//! Identifiers for nodes and heap elements.
//!
//! The paper identifies each process by a unique id `v.id ∈ ℕ` (§1.1) and
//! assumes elements can be totally ordered via a tiebreaker (§1.2). We make
//! both concrete as newtyped `u64`s so they cannot be confused with each
//! other or with raw counters.

use crate::bitsize::{vlq_bits, BitSize};

/// Identifier of a process participating in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Index into dense per-node arrays (nodes are numbered `0..n` in the
    /// simulator; overlay labels are derived by hashing this id).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Globally unique identifier of a heap element.
///
/// Uniqueness is what turns the paper's "tiebreaker" into a concrete total
/// order: elements compare by `(priority, ElemId)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ElemId(pub u64);

impl ElemId {
    /// Build an element id unique across the cluster from the inserting
    /// node's id and a local sequence number. The node id occupies the high
    /// 24 bits, which caps clusters at 2^24 nodes and per-node insert counts
    /// at 2^40 — both far above anything the polynomial-storage model of the
    /// paper (or this simulator) can reach.
    #[inline]
    pub fn compose(node: NodeId, local_seq: u64) -> Self {
        debug_assert!(node.0 < (1 << 24), "node id out of range");
        debug_assert!(local_seq < (1 << 40), "local sequence out of range");
        ElemId((node.0 << 40) | local_seq)
    }

    /// The node that created this element id.
    #[inline]
    pub fn origin(self) -> NodeId {
        NodeId(self.0 >> 40)
    }
}

impl std::fmt::Display for ElemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}.{}", self.origin().0, self.0 & ((1 << 40) - 1))
    }
}

impl BitSize for NodeId {
    fn bits(&self) -> u64 {
        vlq_bits(self.0)
    }
}

impl BitSize for ElemId {
    fn bits(&self) -> u64 {
        vlq_bits(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_roundtrips_origin() {
        let id = ElemId::compose(NodeId(42), 7);
        assert_eq!(id.origin(), NodeId(42));
    }

    #[test]
    fn compose_is_injective_across_nodes_and_seqs() {
        let a = ElemId::compose(NodeId(1), 0);
        let b = ElemId::compose(NodeId(0), 1 << 39);
        let c = ElemId::compose(NodeId(1), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn node_ids_order_by_value() {
        assert!(NodeId(3) < NodeId(10));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(NodeId(5).to_string(), "v5");
        assert_eq!(ElemId::compose(NodeId(2), 9).to_string(), "e2.9");
    }
}
