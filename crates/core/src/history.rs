//! Execution histories.
//!
//! A [`History`] records, for every node, the requests it issued *in issue
//! order* together with their returns. This is exactly the information the
//! semantic definitions of the paper quantify over: the per-node order is
//! what local consistency (Definition 1.1) constrains, and the returns induce
//! the matching M (Definition 1.2).

use crate::ids::NodeId;
use crate::ops::{MatchError, MatchSet, OpId, OpKind, OpRecord, OpReturn};

/// The requests issued by one node, in the order it issued them.
#[derive(Debug, Default, Clone)]
pub struct NodeHistory {
    /// This node's records, in issue order.
    pub ops: Vec<OpRecord>,
}

impl NodeHistory {
    /// Append a newly issued (not yet completed) request and return its id.
    pub fn issue(&mut self, node: NodeId, kind: OpKind) -> OpId {
        let id = OpId {
            node,
            seq: self.ops.len() as u64,
        };
        // First allocation is exact: `Vec`'s minimum-four policy would pin
        // 4 records (384 bytes) on every node of a large simulation, where
        // the common scale-workload history is a single op. Subsequent
        // pushes grow geometrically as usual.
        if self.ops.capacity() == 0 {
            self.ops.reserve_exact(1);
        }
        self.ops.push(OpRecord::new(id, kind));
        id
    }

    /// Record the return value of a previously issued request.
    pub fn complete(&mut self, id: OpId, ret: OpReturn) {
        let rec = &mut self.ops[id.seq as usize];
        debug_assert_eq!(rec.id, id);
        debug_assert!(rec.ret.is_none(), "request {id} completed twice");
        rec.ret = Some(ret);
    }

    /// Attach the serialization-witness counter to a request (Skeap §3.3).
    pub fn witness(&mut self, id: OpId, value: u64) {
        let rec = &mut self.ops[id.seq as usize];
        debug_assert_eq!(rec.id, id);
        rec.witness = Some(value);
    }
}

/// A whole-cluster execution history.
#[derive(Debug, Default, Clone)]
pub struct History {
    /// One per node, indexed by `NodeId::index()`.
    pub nodes: Vec<NodeHistory>,
}

impl History {
    /// An empty history for `n` nodes.
    pub fn new(n: usize) -> Self {
        History {
            nodes: vec![NodeHistory::default(); n],
        }
    }

    /// Mutable access to one node's records.
    pub fn node(&mut self, v: NodeId) -> &mut NodeHistory {
        &mut self.nodes[v.index()]
    }

    /// All records across all nodes (unordered).
    pub fn records(&self) -> impl Iterator<Item = &OpRecord> {
        self.nodes.iter().flat_map(|n| n.ops.iter())
    }

    /// Count of issued requests.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.ops.len()).sum()
    }

    /// No requests issued at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of completed requests.
    pub fn completed(&self) -> usize {
        self.records().filter(|r| r.is_complete()).count()
    }

    /// Derive the matching M from the returns recorded so far.
    pub fn matching(&self) -> Result<MatchSet, MatchError> {
        MatchSet::derive(self.records().copied())
    }

    /// Merge histories produced by independent per-node recorders.
    pub fn merge(parts: Vec<NodeHistory>) -> Self {
        History { nodes: parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::ids::ElemId;
    use crate::priority::Priority;

    #[test]
    fn issue_assigns_consecutive_seq() {
        let mut h = History::new(2);
        let a = h.node(NodeId(0)).issue(NodeId(0), OpKind::DeleteMin);
        let b = h.node(NodeId(0)).issue(NodeId(0), OpKind::DeleteMin);
        let c = h.node(NodeId(1)).issue(NodeId(1), OpKind::DeleteMin);
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 0));
        assert_eq!(h.len(), 3);
        assert_eq!(h.completed(), 0);
    }

    #[test]
    fn complete_and_match_roundtrip() {
        let e = Element::new(ElemId::compose(NodeId(0), 0), Priority(3), 0);
        let mut h = History::new(2);
        let ins = h.node(NodeId(0)).issue(NodeId(0), OpKind::Insert(e));
        let del = h.node(NodeId(1)).issue(NodeId(1), OpKind::DeleteMin);
        h.node(NodeId(0)).complete(ins, OpReturn::Inserted);
        h.node(NodeId(1)).complete(del, OpReturn::Removed(e));
        let m = h.matching().unwrap();
        assert_eq!(m.by_delete[&del], ins);
        assert_eq!(h.completed(), 2);
    }
}
