//! Heap elements.

use crate::bitsize::{vlq_bits, BitSize};
use crate::ids::ElemId;
use crate::priority::{Key, Priority};

/// An element stored in the distributed heap.
///
/// `payload` stands in for the application data an element would carry (a
/// job descriptor, a work item, …). The protocols never inspect it; it only
/// travels with the element and counts toward message size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Element {
    /// Globally unique identity (and tiebreaker).
    pub id: ElemId,
    /// The heap priority.
    pub prio: Priority,
    /// Opaque application data.
    pub payload: u64,
}

impl Element {
    /// Assemble an element.
    #[inline]
    pub fn new(id: ElemId, prio: Priority, payload: u64) -> Self {
        Element { id, prio, payload }
    }

    /// The composite total-order key of this element (§1.2 tiebreaker).
    #[inline]
    pub fn key(&self) -> Key {
        Key::new(self.prio, self.id)
    }
}

impl PartialOrd for Element {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Element {
    /// Elements order by their composite key, never by payload.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl BitSize for Element {
    fn bits(&self) -> u64 {
        self.id.bits() + self.prio.bits() + vlq_bits(self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn elem(node: u64, seq: u64, prio: u64) -> Element {
        Element::new(
            ElemId::compose(NodeId(node), seq),
            Priority(prio),
            node * 100 + seq,
        )
    }

    #[test]
    fn ordering_ignores_payload() {
        let mut a = elem(0, 0, 7);
        let mut b = a;
        a.payload = 1;
        b.payload = 2;
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn ordering_matches_key_order() {
        let a = elem(0, 0, 3);
        let b = elem(1, 0, 3);
        let c = elem(0, 1, 2);
        assert!(c < a, "lower priority wins regardless of id");
        assert!(a < b, "ties broken by element id");
    }

    #[test]
    fn sort_is_total_and_stable_under_distinct_ids() {
        let mut v = [elem(2, 0, 5), elem(0, 0, 5), elem(1, 0, 1)];
        v.sort();
        assert_eq!(v[0].prio, Priority(1));
        assert_eq!(v[1].id.origin(), NodeId(0));
        assert_eq!(v[2].id.origin(), NodeId(2));
    }
}
