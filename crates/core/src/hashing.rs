//! Deterministic pseudorandom hashing.
//!
//! The paper assumes "a publicly known pseudorandom hash function" in three
//! places: deriving overlay labels from node ids (Appendix A), mapping Skeap
//! position pairs `(p, pos)` to DHT keys (§3.2.4), and the symmetric pair
//! hash `h(i,j) = h(j,i)` used by KSelect's distributed sorting (§4.3). We
//! use SplitMix64 — a well-mixed 64-bit finalizer — seeded per use-site with
//! a domain tag so the three hash families are independent.

/// One round of SplitMix64 mixing: a bijective, well-distributed finalizer.
#[inline]
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash a 64-bit value within a named domain (domain separation keeps the
/// paper's independent hash functions independent in our reproduction).
#[inline]
pub fn hash_u64(domain: u64, x: u64) -> u64 {
    split_mix64(split_mix64(domain ^ 0xA5A5_5A5A_D00D_F00D) ^ split_mix64(x))
}

/// Map a hash to the unit interval [0,1) — the LDB label / DHT key space.
#[inline]
pub fn hash_to_unit(domain: u64, x: u64) -> f64 {
    // 53 mantissa bits give a uniform dyadic rational in [0,1).
    (hash_u64(domain, x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Symmetric pair hash into [0,1): `h(i,j) = h(j,i)` (KSelect §4.3 requires
/// copies c_{i,j} and c_{j,i} to meet at the same DHT key).
#[inline]
pub fn hash_pair_unit(domain: u64, i: u64, j: u64) -> f64 {
    let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
    hash_to_unit(domain, split_mix64(lo).wrapping_add(hi.rotate_left(17)))
}

/// Domain tags used across the workspace (central registry so no two
/// use-sites collide by accident).
pub mod domains {
    /// Overlay node labels (Appendix A: label = hash(v.id)).
    pub const LABEL: u64 = 1;
    /// Skeap DHT keys h(p, pos) (§3.2.4).
    pub const SKEAP_KEY: u64 = 2;
    /// Seap random insert keys (§5.1).
    pub const SEAP_INSERT: u64 = 3;
    /// Seap DeleteMin position keys h(pos) (§5.2).
    pub const SEAP_POS: u64 = 4;
    /// KSelect representative position owner (§4.3).
    pub const KSELECT_POS: u64 = 5;
    /// KSelect symmetric comparison rendezvous h(i,j) (§4.3).
    pub const KSELECT_PAIR: u64 = 6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_stays_in_range() {
        for x in 0..10_000u64 {
            let u = hash_to_unit(domains::LABEL, x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_hash_is_roughly_uniform() {
        let mut buckets = [0usize; 16];
        let n = 64_000u64;
        for x in 0..n {
            let u = hash_to_unit(domains::LABEL, x);
            buckets[(u * 16.0) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn pair_hash_is_symmetric() {
        for i in 0..50u64 {
            for j in 0..50u64 {
                assert_eq!(
                    hash_pair_unit(domains::KSELECT_PAIR, i, j),
                    hash_pair_unit(domains::KSELECT_PAIR, j, i)
                );
            }
        }
    }

    #[test]
    fn pair_hash_distinguishes_pairs() {
        // Not a cryptographic claim — just that distinct unordered pairs
        // rarely collide, which KSelect's rendezvous relies on.
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..100u64 {
            for j in i..100u64 {
                let h = hash_pair_unit(domains::KSELECT_PAIR, i, j).to_bits();
                if !seen.insert(h) {
                    collisions += 1;
                }
            }
        }
        assert!(collisions < 3, "{collisions} collisions in 5050 pairs");
    }

    #[test]
    fn domains_are_independent() {
        // The same input hashed in two domains should disagree essentially
        // always.
        let mut equal = 0;
        for x in 0..1_000u64 {
            if hash_u64(domains::LABEL, x) == hash_u64(domains::SKEAP_KEY, x) {
                equal += 1;
            }
        }
        assert_eq!(equal, 0);
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut outs = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(outs.insert(split_mix64(x)));
        }
    }
}
