//! Structural state fingerprinting for schedule-space model checking.
//!
//! `dpq-mc` prunes its DFS on "have I seen this global state before?". That
//! needs a hash over *semantic* protocol state: deterministic across runs
//! (unlike `std::hash::Hash` with `RandomState`), insensitive to iteration
//! order of unordered containers, and explicit about what is state (anything
//! that can influence future behavior) versus telemetry (counters that
//! cannot). Each crate implements [`StateHash`] next to its private types;
//! this module supplies the trait, the FNV-1a [`StateHasher`], and impls for
//! primitives, std containers, and the core vocabulary types.
//!
//! Soundness rule: *under*-discriminating (two genuinely different states
//! hashing alike beyond raw 64-bit collisions) can make the checker skip
//! reachable behaviors, so every field that feeds a future decision must be
//! written. *Over*-discriminating merely weakens pruning — when in doubt,
//! include the field.

use crate::element::Element;
use crate::history::{History, NodeHistory};
use crate::ids::{ElemId, NodeId};
use crate::ops::{OpId, OpKind, OpRecord, OpReturn};
use crate::priority::{Key, Priority};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// 64-bit FNV-1a accumulator with multiset support.
///
/// FNV-1a is not cryptographic — fine here: a fingerprint collision makes
/// the model checker prune one state it should have explored, an accepted
/// 2⁻⁶⁴-per-pair risk, and never produces a false *alarm*.
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StateHasher {
    /// Fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        StateHasher { state: FNV_OFFSET }
    }

    /// Mix one machine word, byte by byte.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let mut s = self.state;
        for b in v.to_le_bytes() {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Mix a string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        let mut st = self.state;
        for b in s.as_bytes() {
            st ^= *b as u64;
            st = st.wrapping_mul(FNV_PRIME);
        }
        self.state = st;
    }

    /// Mix an order-*insensitive* collection: each item is hashed into a
    /// fresh sub-hasher and the sub-digests are combined commutatively
    /// (wrapping sum), then sealed with the count. Use for `HashMap` /
    /// `HashSet` whose iteration order is unspecified.
    pub fn write_unordered<T>(
        &mut self,
        items: impl Iterator<Item = T>,
        f: impl Fn(&mut StateHasher, T),
    ) {
        let mut acc = 0u64;
        let mut count = 0u64;
        for item in items {
            let mut sub = StateHasher::new();
            f(&mut sub, item);
            acc = acc.wrapping_add(sub.finish());
            count += 1;
        }
        self.write_u64(count);
        self.write_u64(acc);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

/// Deterministic, structure-sensitive state digest.
pub trait StateHash {
    /// Feed this value's semantic state into `h`.
    fn state_hash(&self, h: &mut StateHasher);
}

/// Digest a single value from scratch.
pub fn state_digest<T: StateHash + ?Sized>(v: &T) -> u64 {
    let mut h = StateHasher::new();
    v.state_hash(&mut h);
    h.finish()
}

macro_rules! hash_as_u64 {
    ($($t:ty),*) => {$(
        impl StateHash for $t {
            fn state_hash(&self, h: &mut StateHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*}
}

hash_as_u64!(u8, u16, u32, u64, usize, bool);

impl StateHash for () {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(0);
    }
}

impl StateHash for i64 {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(*self as u64);
    }
}

impl StateHash for f64 {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.to_bits());
    }
}

impl StateHash for str {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(self);
    }
}

impl StateHash for String {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(self);
    }
}

impl<T: StateHash> StateHash for Option<T> {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.state_hash(h);
            }
        }
    }
}

impl<T: StateHash> StateHash for [T] {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.state_hash(h);
        }
    }
}

impl<T: StateHash> StateHash for Vec<T> {
    fn state_hash(&self, h: &mut StateHasher) {
        self.as_slice().state_hash(h);
    }
}

impl<T: StateHash> StateHash for VecDeque<T> {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.state_hash(h);
        }
    }
}

// BTree containers iterate in key order — deterministic, so hash in order.
impl<K: StateHash, V: StateHash> StateHash for BTreeMap<K, V> {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.len() as u64);
        for (k, v) in self {
            k.state_hash(h);
            v.state_hash(h);
        }
    }
}

impl<T: StateHash> StateHash for BTreeSet<T> {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.state_hash(h);
        }
    }
}

impl<A: StateHash, B: StateHash> StateHash for (A, B) {
    fn state_hash(&self, h: &mut StateHasher) {
        self.0.state_hash(h);
        self.1.state_hash(h);
    }
}

impl<A: StateHash, B: StateHash, C: StateHash> StateHash for (A, B, C) {
    fn state_hash(&self, h: &mut StateHasher) {
        self.0.state_hash(h);
        self.1.state_hash(h);
        self.2.state_hash(h);
    }
}

impl<T: StateHash + ?Sized> StateHash for &T {
    fn state_hash(&self, h: &mut StateHasher) {
        (**self).state_hash(h);
    }
}

impl StateHash for NodeId {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.0);
    }
}

impl StateHash for ElemId {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.0);
    }
}

impl StateHash for Priority {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.0);
    }
}

impl StateHash for Key {
    fn state_hash(&self, h: &mut StateHasher) {
        self.prio.state_hash(h);
        self.elem.state_hash(h);
    }
}

impl StateHash for Element {
    fn state_hash(&self, h: &mut StateHasher) {
        self.id.state_hash(h);
        self.prio.state_hash(h);
        h.write_u64(self.payload);
    }
}

impl StateHash for OpId {
    fn state_hash(&self, h: &mut StateHasher) {
        self.node.state_hash(h);
        h.write_u64(self.seq);
    }
}

impl StateHash for OpKind {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            OpKind::Insert(e) => {
                h.write_u64(1);
                e.state_hash(h);
            }
            OpKind::DeleteMin => h.write_u64(2),
        }
    }
}

impl StateHash for OpReturn {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            OpReturn::Inserted => h.write_u64(1),
            OpReturn::Removed(e) => {
                h.write_u64(2);
                e.state_hash(h);
            }
            OpReturn::Bottom => h.write_u64(3),
        }
    }
}

impl StateHash for OpRecord {
    fn state_hash(&self, h: &mut StateHasher) {
        self.id.state_hash(h);
        self.kind.state_hash(h);
        self.ret.state_hash(h);
        self.witness.state_hash(h);
    }
}

impl StateHash for NodeHistory {
    fn state_hash(&self, h: &mut StateHasher) {
        self.ops.state_hash(h);
    }
}

impl StateHash for History {
    fn state_hash(&self, h: &mut StateHasher) {
        self.nodes.state_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn digests_are_deterministic_and_structure_sensitive() {
        assert_eq!(state_digest(&42u64), state_digest(&42u64));
        assert_ne!(state_digest(&42u64), state_digest(&43u64));
        // Length prefixes keep concatenations apart.
        let a: (Vec<u64>, Vec<u64>) = (vec![1, 2], vec![3]);
        let b: (Vec<u64>, Vec<u64>) = (vec![1], vec![2, 3]);
        assert_ne!(state_digest(&a), state_digest(&b));
        assert_ne!(state_digest("ab"), state_digest("ba"));
    }

    #[test]
    fn unordered_combine_ignores_iteration_order() {
        let digest = |pairs: &[(u64, u64)]| {
            let mut h = StateHasher::new();
            h.write_unordered(pairs.iter(), |h, (k, v)| {
                h.write_u64(*k);
                h.write_u64(*v);
            });
            h.finish()
        };
        let fwd = [(1, 10), (2, 20), (3, 30)];
        let rev = [(3, 30), (2, 20), (1, 10)];
        assert_eq!(digest(&fwd), digest(&rev));
        assert_ne!(digest(&fwd), digest(&fwd[..2]));
        // Swapping which key owns which value must change the digest.
        let swapped = [(1, 20), (2, 10), (3, 30)];
        assert_ne!(digest(&fwd), digest(&swapped));
    }

    #[test]
    fn hashmap_digest_is_stable_across_rebuild_orders() {
        let mut m1 = HashMap::new();
        let mut m2 = HashMap::new();
        for i in 0..100u64 {
            m1.insert(i, i * 7);
        }
        for i in (0..100u64).rev() {
            m2.insert(i, i * 7);
        }
        let digest = |m: &HashMap<u64, u64>| {
            let mut h = StateHasher::new();
            h.write_unordered(m.iter(), |h, (k, v)| {
                h.write_u64(*k);
                h.write_u64(*v);
            });
            h.finish()
        };
        assert_eq!(digest(&m1), digest(&m2));
    }

    #[test]
    fn option_and_enum_tags_disambiguate() {
        assert_ne!(state_digest(&None::<u64>), state_digest(&Some(0u64)));
        assert_ne!(
            state_digest(&OpReturn::Inserted),
            state_digest(&OpReturn::Bottom)
        );
        let e = Element {
            id: ElemId(5),
            prio: Priority(9),
            payload: 0,
        };
        assert_ne!(
            state_digest(&OpKind::Insert(e)),
            state_digest(&OpKind::DeleteMin)
        );
    }
}
