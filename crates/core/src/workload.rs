//! Workload generation for experiments and tests.
//!
//! Produces per-node, issue-ordered operation scripts with globally unique
//! element ids. Drivers feed these into protocol nodes either all at once
//! (batch experiments) or at a per-round injection rate λ (the paper's
//! injection-rate model, §1.1).

use crate::element::Element;
use crate::ids::{ElemId, NodeId};
use crate::ops::OpKind;
use crate::priority::Priority;
use crate::rng::DetRng;

/// Parameters of a random workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of nodes issuing requests.
    pub n: usize,
    /// Requests per node.
    pub ops_per_node: usize,
    /// Probability that a request is an Insert (the rest are DeleteMin).
    pub insert_ratio: f64,
    /// Priority universe size: priorities are drawn uniformly from
    /// `0..n_prios`.
    pub n_prios: u64,
    /// Workload seed (scripts are a pure function of the spec).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A balanced default: half inserts, half deletes.
    pub fn balanced(n: usize, ops_per_node: usize, n_prios: u64, seed: u64) -> Self {
        WorkloadSpec {
            n,
            ops_per_node,
            insert_ratio: 0.5,
            n_prios,
            seed,
        }
    }
}

/// Generate the per-node scripts.
pub fn generate(spec: &WorkloadSpec) -> Vec<Vec<OpKind>> {
    let root = DetRng::new(spec.seed);
    (0..spec.n)
        .map(|v| {
            let mut rng = root.split(v as u64);
            let node = NodeId(v as u64);
            (0..spec.ops_per_node)
                .map(|i| {
                    if rng.chance(spec.insert_ratio) {
                        let prio = Priority(rng.below(spec.n_prios));
                        let id = ElemId::compose(node, i as u64);
                        OpKind::Insert(Element::new(id, prio, rng.next_u64_inline() >> 32))
                    } else {
                        OpKind::DeleteMin
                    }
                })
                .collect()
        })
        .collect()
}

/// Generate a script of only inserts (Seap's Insert phase, heap pre-fill).
pub fn inserts_only(spec: &WorkloadSpec) -> Vec<Vec<OpKind>> {
    let mut s = *spec;
    s.insert_ratio = 1.0;
    generate(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scripts_have_requested_shape() {
        let spec = WorkloadSpec::balanced(4, 100, 8, 1);
        let w = generate(&spec);
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn element_ids_are_globally_unique() {
        let spec = WorkloadSpec::balanced(6, 200, 4, 2);
        let mut seen = HashSet::new();
        for script in generate(&spec) {
            for op in script {
                if let OpKind::Insert(e) = op {
                    assert!(seen.insert(e.id), "duplicate id {}", e.id);
                }
            }
        }
    }

    #[test]
    fn insert_ratio_is_respected() {
        let spec = WorkloadSpec {
            n: 1,
            ops_per_node: 10_000,
            insert_ratio: 0.8,
            n_prios: 2,
            seed: 3,
        };
        let inserts = generate(&spec)[0].iter().filter(|o| o.is_insert()).count();
        assert!((7_500..8_500).contains(&inserts), "{inserts}");
    }

    #[test]
    fn priorities_stay_in_universe() {
        let spec = WorkloadSpec::balanced(3, 500, 5, 4);
        for script in generate(&spec) {
            for op in script {
                if let OpKind::Insert(e) = op {
                    assert!(e.prio.0 < 5);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::balanced(2, 50, 3, 5);
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn inserts_only_has_no_deletes() {
        let spec = WorkloadSpec::balanced(2, 50, 3, 6);
        for script in inserts_only(&spec) {
            assert!(script.iter().all(OpKind::is_insert));
        }
    }
}
