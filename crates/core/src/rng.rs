//! Deterministic randomness.
//!
//! Every stochastic choice in the workspace (overlay labels aside, which are
//! hashed) flows through a [`DetRng`] seeded explicitly, so any run —
//! including any w.h.p.-style experiment — can be replayed bit-for-bit from
//! its seed. Built on SplitMix64 directly rather than `rand`'s `StdRng` so
//! seeds stay human-readable `u64`s and stream-splitting is cheap.

use crate::hashing::split_mix64;

/// A small, fast, seedable RNG (SplitMix64 sequence).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: split_mix64(seed ^ 0xDEAD_BEEF_CAFE_F00D),
        }
    }

    /// Derive an independent stream, e.g. one per node from a run seed.
    pub fn split(&self, stream: u64) -> DetRng {
        DetRng::new(split_mix64(
            self.state ^ split_mix64(stream.wrapping_add(0x9E37)),
        ))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64_inline(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        split_mix64(self.state)
    }

    /// Uniform in `[0, bound)`. Uses rejection-free multiply-shift (Lemire);
    /// bias is < 2^-32 for the bounds this workspace uses, far below any
    /// experiment's resolution.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64_inline() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform f64 in [0,1).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64_inline() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick one element uniformly (panics on empty slice).
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

impl crate::statehash::StateHash for DetRng {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        h.write_u64(self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_inline(), b.next_u64_inline());
        }
    }

    #[test]
    fn split_streams_diverge() {
        let root = DetRng::new(7);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..64)
            .filter(|_| a.next_u64_inline() == b.next_u64_inline())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut rng = DetRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = DetRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = DetRng::new(17);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
