//! Property tests for the foundation types: encodings, hashing, ids,
//! histories.

use dpq_core::bitsize::{vlq_bits, vlq_bits_i64};
use dpq_core::hashing::{domains, hash_pair_unit, hash_to_unit};
use dpq_core::workload::{generate, WorkloadSpec};
use dpq_core::{DetRng, ElemId, Key, NodeId, Priority};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vlq_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        if a <= b {
            prop_assert!(vlq_bits(a) <= vlq_bits(b));
        }
    }

    #[test]
    fn vlq_is_logarithmic(v in 1u64..u64::MAX / 4) {
        // 2·log2(v+1)+1 within one doubling.
        let bits = vlq_bits(v);
        let log = 64 - (v + 1).leading_zeros() as u64;
        prop_assert!((2 * log - 2..=2 * log + 1).contains(&bits));
    }

    #[test]
    fn zigzag_handles_all_signs(v in any::<i64>()) {
        let b = vlq_bits_i64(v);
        prop_assert!((1..=129).contains(&b));
        if v != i64::MIN {
            // Symmetric-ish: |v| and -|v| within 2 bits.
            let pos = vlq_bits_i64(v.abs());
            let neg = vlq_bits_i64(-v.abs());
            prop_assert!(pos.abs_diff(neg) <= 2);
        }
    }

    #[test]
    fn unit_hash_in_range_and_deterministic(domain in 0u64..10, x in any::<u64>()) {
        let u = hash_to_unit(domain, x);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, hash_to_unit(domain, x));
    }

    #[test]
    fn pair_hash_symmetric(i in any::<u64>(), j in any::<u64>()) {
        prop_assert_eq!(
            hash_pair_unit(domains::KSELECT_PAIR, i, j),
            hash_pair_unit(domains::KSELECT_PAIR, j, i)
        );
    }

    #[test]
    fn elem_id_compose_roundtrips(node in 0u64..(1 << 24), seq in 0u64..(1 << 40)) {
        let id = ElemId::compose(NodeId(node), seq);
        prop_assert_eq!(id.origin(), NodeId(node));
    }

    #[test]
    fn elem_id_compose_is_injective(
        a in (0u64..(1 << 12), 0u64..(1 << 20)),
        b in (0u64..(1 << 12), 0u64..(1 << 20)),
    ) {
        let ia = ElemId::compose(NodeId(a.0), a.1);
        let ib = ElemId::compose(NodeId(b.0), b.1);
        prop_assert_eq!(ia == ib, a == b);
    }

    #[test]
    fn key_order_is_lexicographic(
        p1 in any::<u64>(), e1 in any::<u64>(),
        p2 in any::<u64>(), e2 in any::<u64>(),
    ) {
        let a = Key::new(Priority(p1), ElemId(e1));
        let b = Key::new(Priority(p2), ElemId(e2));
        prop_assert_eq!(a < b, (p1, e1) < (p2, e2));
    }

    #[test]
    fn det_rng_below_respects_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn det_rng_streams_replay(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::new(seed).split(stream);
        let mut b = DetRng::new(seed).split(stream);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64_inline(), b.next_u64_inline());
        }
    }

    #[test]
    fn workloads_are_deterministic_and_well_formed(
        n in 1usize..8, ops in 0usize..20, seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::balanced(n, ops, 4, seed);
        let w1 = generate(&spec);
        let w2 = generate(&spec);
        prop_assert_eq!(&w1, &w2);
        prop_assert_eq!(w1.len(), n);
        let mut ids = std::collections::HashSet::new();
        for script in &w1 {
            prop_assert_eq!(script.len(), ops);
            for op in script {
                if let dpq_core::OpKind::Insert(e) = op {
                    prop_assert!(e.prio.0 < 4);
                    prop_assert!(ids.insert(e.id));
                }
            }
        }
    }
}
