//! DHT message alphabet.

use dpq_core::bitsize::{tag_bits, vlq_bits};
use dpq_core::hashing::hash_to_unit;
use dpq_core::{BitSize, Element, NodeId};

/// The point of [0,1) a logical key lives at, under a hash-domain tag (so
/// Skeap keys, Seap insert keys and Seap position keys occupy independent
/// pseudorandom families).
#[inline]
pub fn point_for(domain: u64, logical: u64) -> f64 {
    hash_to_unit(domain, logical)
}

/// A routed DHT request (travels as the payload of a `RouteMsg` aimed at
/// `point_for(domain, logical)`).
#[derive(Debug, Clone)]
pub enum DhtReq {
    /// Store `elem` under `logical`.
    Put {
        /// The logical key.
        logical: u64,
        /// The element to store.
        elem: Element,
        /// Who receives the confirmation.
        reply_to: NodeId,
        /// Requester-chosen id echoed in the ack.
        id: u64,
    },
    /// Remove the element under `logical` and deliver it to `reply_to`.
    Get {
        /// The logical key.
        logical: u64,
        /// Who receives the element.
        reply_to: NodeId,
        /// Requester-chosen id echoed in the reply.
        id: u64,
    },
}

impl BitSize for DhtReq {
    fn bits(&self) -> u64 {
        tag_bits(2)
            + match self {
                DhtReq::Put {
                    logical,
                    elem,
                    reply_to,
                    id,
                } => vlq_bits(*logical) + elem.bits() + reply_to.bits() + vlq_bits(*id),
                DhtReq::Get {
                    logical,
                    reply_to,
                    id,
                } => vlq_bits(*logical) + reply_to.bits() + vlq_bits(*id),
            }
    }
}

/// A direct DHT response.
#[derive(Debug, Clone)]
pub enum DhtResp {
    /// The Put under request id `id` has been stored (or matched a parked
    /// Get). Seap's Insert phase waits for these confirmations (§5.1).
    PutAck {
        /// The request id being confirmed.
        id: u64,
    },
    /// The Get under request id `id` found its element.
    GetOk {
        /// The request id being answered.
        id: u64,
        /// The removed element.
        elem: Element,
    },
}

impl BitSize for DhtResp {
    fn bits(&self) -> u64 {
        tag_bits(2)
            + match self {
                DhtResp::PutAck { id } => vlq_bits(*id),
                DhtResp::GetOk { id, elem } => vlq_bits(*id) + elem.bits(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::hashing::domains;

    #[test]
    fn points_are_deterministic_and_in_range() {
        for k in 0..1000u64 {
            let p = point_for(domains::SKEAP_KEY, k);
            assert!((0.0..1.0).contains(&p));
            assert_eq!(p, point_for(domains::SKEAP_KEY, k));
        }
    }

    #[test]
    fn domains_shift_points() {
        let same = (0..100u64)
            .filter(|&k| point_for(domains::SKEAP_KEY, k) == point_for(domains::SEAP_INSERT, k))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn message_sizes_are_logarithmic_in_key_magnitude() {
        let small = DhtReq::Get {
            logical: 1,
            reply_to: NodeId(0),
            id: 1,
        };
        let large = DhtReq::Get {
            logical: 1 << 50,
            reply_to: NodeId(0),
            id: 1,
        };
        assert!(large.bits() > small.bits());
        assert!(large.bits() - small.bits() <= 2 * 50);
    }
}
