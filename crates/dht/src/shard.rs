//! Server side: the key/element store one node keeps for the segments its
//! virtual nodes manage.

use crate::msgs::{DhtReq, DhtResp};
use dpq_core::{Element, NodeId};

/// One node's slice of the DHT, with Get-parking (§3.2.4).
///
/// Both tables are flat vectors sorted by logical key, with ties (key
/// reuse) kept in arrival order — a run of equal keys *is* the per-key
/// FIFO queue. A typical shard holds zero to a handful of elements, where
/// the former `HashMap<u64, VecDeque<…>>` paid a hash table plus a
/// minimum-capacity ring buffer per key; the flat form costs one small
/// allocation for the whole shard and binary-searched lookups.
#[derive(Debug, Default, Clone)]
pub struct DhtShard {
    /// `(logical key, element)` sorted by key, arrival order within a key.
    /// Protocol keys are unique per slot, but the store tolerates reuse
    /// (Seap reuses position keys across DeleteMin phases) by queueing.
    store: Vec<(u64, Element)>,
    /// Gets waiting for their Put: `(logical key, getter, request id)`,
    /// sorted by key, arrival order within a key.
    parked: Vec<(u64, NodeId, u64)>,
}

/// First index of `key`'s run in a key-sorted slice (`key_of` projects an
/// entry to its key).
fn run_start<T>(v: &[T], key: u64, key_of: impl Fn(&T) -> u64) -> usize {
    v.partition_point(|e| key_of(e) < key)
}

/// One past the last index of `key`'s run.
fn run_end<T>(v: &[T], key: u64, key_of: impl Fn(&T) -> u64) -> usize {
    v.partition_point(|e| key_of(e) <= key)
}

impl DhtShard {
    /// An empty shard.
    pub fn new() -> Self {
        DhtShard::default()
    }

    /// Handle a routed request that was delivered to this node. Returns the
    /// direct responses to send.
    pub fn handle(&mut self, req: DhtReq) -> Vec<(NodeId, DhtResp)> {
        match req {
            DhtReq::Put {
                logical,
                elem,
                reply_to,
                id,
            } => {
                let mut out = Vec::with_capacity(2);
                out.push((reply_to, DhtResp::PutAck { id }));
                // A parked Get consumes the element immediately (oldest
                // waiter first).
                let at = run_start(&self.parked, logical, |e| e.0);
                if self.parked.get(at).is_some_and(|e| e.0 == logical) {
                    let (_, getter, get_id) = self.parked.remove(at);
                    out.push((getter, DhtResp::GetOk { id: get_id, elem }));
                } else {
                    self.store
                        .insert(run_end(&self.store, logical, |e| e.0), (logical, elem));
                }
                out
            }
            DhtReq::Get {
                logical,
                reply_to,
                id,
            } => {
                let at = run_start(&self.store, logical, |e| e.0);
                if self.store.get(at).is_some_and(|e| e.0 == logical) {
                    let (_, elem) = self.store.remove(at);
                    vec![(reply_to, DhtResp::GetOk { id, elem })]
                } else {
                    self.parked.insert(
                        run_end(&self.parked, logical, |e| e.0),
                        (logical, reply_to, id),
                    );
                    Vec::new()
                }
            }
        }
    }

    /// Number of stored elements (parked Gets excluded).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// No elements stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of Gets currently waiting for their Put.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Drain everything — the handover a leaving node performs (its
    /// successor re-ingests the returned pairs).
    pub fn drain_all(&mut self) -> Vec<(u64, Element)> {
        let mut out = std::mem::take(&mut self.store);
        out.sort_by_key(|(k, e)| (*k, e.id));
        out
    }

    /// Drain the parked-Get registrations — the other half of a handover.
    /// A leaving node's waiters must move with its key range, or a Get that
    /// parked before the splice waits forever at a node that no longer
    /// manages the key. Returns `(logical key, getter, request id)` triples
    /// in key order.
    pub fn drain_parked(&mut self) -> Vec<(u64, NodeId, u64)> {
        std::mem::take(&mut self.parked)
    }

    /// Re-ingest handed-over pairs (join/leave path).
    pub fn ingest(&mut self, pairs: impl IntoIterator<Item = (u64, Element)>) {
        for (k, e) in pairs {
            self.store.insert(run_end(&self.store, k, |e| e.0), (k, e));
        }
    }

    /// Re-park a handed-over Get registration at this node. If the element
    /// is already here — the racing Put landed at the new owner before the
    /// old owner's parked-Get transfer did — the Get resolves immediately
    /// and the response to send is returned.
    pub fn ingest_parked(
        &mut self,
        logical: u64,
        getter: NodeId,
        id: u64,
    ) -> Option<(NodeId, DhtResp)> {
        let at = run_start(&self.store, logical, |e| e.0);
        if self.store.get(at).is_some_and(|e| e.0 == logical) {
            let (_, elem) = self.store.remove(at);
            Some((getter, DhtResp::GetOk { id, elem }))
        } else {
            self.parked.insert(
                run_end(&self.parked, logical, |e| e.0),
                (logical, getter, id),
            );
            None
        }
    }

    /// Remove and return every stored `(key, element)` pair matching the
    /// predicate, in key order — the selective handover a rebalance performs
    /// when only part of a node's range moved to a new owner.
    pub fn extract_pairs(
        &mut self,
        mut pred: impl FnMut(u64, &Element) -> bool,
    ) -> Vec<(u64, Element)> {
        let mut out = Vec::new();
        self.store.retain(|&(k, e)| {
            if pred(k, &e) {
                out.push((k, e));
                false
            } else {
                true
            }
        });
        out
    }

    /// Remove and return every stored element matching the predicate, in
    /// ascending element-key order. Seap's DeleteMin phase uses this to
    /// pull the locally stored elements among the k smallest out of their
    /// random-key slots before re-storing them under position keys (§5.2).
    pub fn extract_matching(
        &mut self,
        mut pred: impl FnMut(u64, &Element) -> bool,
    ) -> Vec<Element> {
        let mut out = Vec::new();
        self.store.retain(|&(k, e)| {
            if pred(k, &e) {
                out.push(e);
                false
            } else {
                true
            }
        });
        out.sort();
        out
    }

    /// Iterate stored elements (key order, arrival order within a key).
    pub fn elements(&self) -> impl Iterator<Item = (u64, &Element)> {
        self.store.iter().map(|(k, e)| (*k, e))
    }
}

impl dpq_core::StateHash for DhtShard {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        // Digest-compatible with the former `HashMap<u64, VecDeque<_>>`
        // layout: an unordered multiset of (key, ordered queue) entries,
        // where a queue is a key's contiguous run.
        h.write_unordered(self.store.chunk_by(|a, b| a.0 == b.0), |h, run| {
            h.write_u64(run[0].0);
            h.write_u64(run.len() as u64);
            for (_, e) in run {
                e.state_hash(h);
            }
        });
        h.write_unordered(self.parked.chunk_by(|a, b| a.0 == b.0), |h, run| {
            h.write_u64(run[0].0);
            h.write_u64(run.len() as u64);
            for &(_, getter, id) in run {
                getter.state_hash(h);
                h.write_u64(id);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Priority};

    fn elem(seq: u64) -> Element {
        Element::new(ElemId::compose(NodeId(0), seq), Priority(seq), 0)
    }

    #[test]
    fn put_then_get_roundtrips() {
        let mut s = DhtShard::new();
        let acks = s.handle(DhtReq::Put {
            logical: 7,
            elem: elem(1),
            reply_to: NodeId(3),
            id: 100,
        });
        assert!(matches!(acks[0], (NodeId(3), DhtResp::PutAck { id: 100 })));
        assert_eq!(s.len(), 1);
        let got = s.handle(DhtReq::Get {
            logical: 7,
            reply_to: NodeId(5),
            id: 200,
        });
        assert!(matches!(got[0], (NodeId(5), DhtResp::GetOk { id: 200, elem: e }) if e == elem(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn get_before_put_parks_and_resolves() {
        let mut s = DhtShard::new();
        let none = s.handle(DhtReq::Get {
            logical: 9,
            reply_to: NodeId(4),
            id: 1,
        });
        assert!(none.is_empty());
        assert_eq!(s.parked_count(), 1);
        let out = s.handle(DhtReq::Put {
            logical: 9,
            elem: elem(2),
            reply_to: NodeId(8),
            id: 2,
        });
        // PutAck to the putter AND GetOk to the parked getter.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], (NodeId(8), DhtResp::PutAck { id: 2 })));
        assert!(matches!(out[1], (NodeId(4), DhtResp::GetOk { id: 1, .. })));
        assert!(s.is_empty());
        assert_eq!(s.parked_count(), 0);
    }

    #[test]
    fn key_reuse_queues_fifo() {
        let mut s = DhtShard::new();
        for i in 0..3 {
            s.handle(DhtReq::Put {
                logical: 1,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        for i in 0..3 {
            let out = s.handle(DhtReq::Get {
                logical: 1,
                reply_to: NodeId(0),
                id: 10 + i,
            });
            assert!(matches!(out[0].1, DhtResp::GetOk { elem: e, .. } if e == elem(i)));
        }
    }

    #[test]
    fn multiple_parked_gets_resolve_in_order() {
        let mut s = DhtShard::new();
        for i in 0..2 {
            s.handle(DhtReq::Get {
                logical: 5,
                reply_to: NodeId(i),
                id: i,
            });
        }
        let first = s.handle(DhtReq::Put {
            logical: 5,
            elem: elem(0),
            reply_to: NodeId(9),
            id: 50,
        });
        assert!(matches!(
            first[1],
            (NodeId(0), DhtResp::GetOk { id: 0, .. })
        ));
        assert_eq!(s.parked_count(), 1);
        let second = s.handle(DhtReq::Put {
            logical: 5,
            elem: elem(1),
            reply_to: NodeId(9),
            id: 51,
        });
        assert!(matches!(
            second[1],
            (NodeId(1), DhtResp::GetOk { id: 1, .. })
        ));
        assert_eq!(s.parked_count(), 0);
    }

    #[test]
    fn drain_and_ingest_preserve_contents() {
        let mut a = DhtShard::new();
        for i in 0..5 {
            a.handle(DhtReq::Put {
                logical: i % 2,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        let pairs = a.drain_all();
        assert_eq!(pairs.len(), 5);
        assert!(a.is_empty());
        let mut b = DhtShard::new();
        b.ingest(pairs);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn parked_transfer_resolves_in_either_order() {
        // Put-then-parked-transfer: the racing Put is already at the new
        // owner when the old owner's parked Get arrives.
        let mut nu = DhtShard::new();
        nu.handle(DhtReq::Put {
            logical: 3,
            elem: elem(7),
            reply_to: NodeId(9),
            id: 70,
        });
        let resolved = nu.ingest_parked(3, NodeId(4), 41);
        assert!(
            matches!(resolved, Some((NodeId(4), DhtResp::GetOk { id: 41, elem: e })) if e == elem(7))
        );
        assert!(nu.is_empty() && nu.parked_count() == 0);
        // Parked-transfer-then-Put: the registration waits at the new owner
        // and the Put serves it.
        let mut nu = DhtShard::new();
        assert!(nu.ingest_parked(3, NodeId(4), 41).is_none());
        assert_eq!(nu.parked_count(), 1);
        let out = nu.handle(DhtReq::Put {
            logical: 3,
            elem: elem(7),
            reply_to: NodeId(9),
            id: 70,
        });
        assert!(matches!(out[1], (NodeId(4), DhtResp::GetOk { id: 41, .. })));
    }

    #[test]
    fn drain_parked_moves_waiters() {
        let mut old = DhtShard::new();
        old.handle(DhtReq::Get {
            logical: 5,
            reply_to: NodeId(2),
            id: 20,
        });
        old.handle(DhtReq::Get {
            logical: 9,
            reply_to: NodeId(3),
            id: 30,
        });
        let waiters = old.drain_parked();
        assert_eq!(waiters, vec![(5, NodeId(2), 20), (9, NodeId(3), 30)]);
        assert_eq!(old.parked_count(), 0);
    }

    #[test]
    fn extract_pairs_keeps_keys() {
        let mut s = DhtShard::new();
        for i in 0..4 {
            s.handle(DhtReq::Put {
                logical: 10 + i,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        let moved = s.extract_pairs(|k, _| k >= 12);
        assert_eq!(moved, vec![(12, elem(2)), (13, elem(3))]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn runs_interleave_across_keys_without_mixing_queues() {
        let mut s = DhtShard::new();
        // Interleave puts across two keys; each key's FIFO must be
        // independent of the other's.
        for (i, key) in [(0u64, 2u64), (1, 8), (2, 2), (3, 8), (4, 2)] {
            s.handle(DhtReq::Put {
                logical: key,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        let take = |s: &mut DhtShard, key: u64, id: u64| {
            let out = s.handle(DhtReq::Get {
                logical: key,
                reply_to: NodeId(0),
                id,
            });
            match out[0].1 {
                DhtResp::GetOk { elem: e, .. } => e,
                _ => panic!("expected GetOk"),
            }
        };
        assert_eq!(take(&mut s, 2, 100), elem(0));
        assert_eq!(take(&mut s, 8, 101), elem(1));
        assert_eq!(take(&mut s, 2, 102), elem(2));
        assert_eq!(take(&mut s, 2, 103), elem(4));
        assert_eq!(take(&mut s, 8, 104), elem(3));
        assert!(s.is_empty());
    }
}
