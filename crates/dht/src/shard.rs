//! Server side: the key/element store one node keeps for the segments its
//! virtual nodes manage.

use crate::msgs::{DhtReq, DhtResp};
use dpq_core::{Element, NodeId};
use std::collections::{HashMap, VecDeque};

/// One node's slice of the DHT, with Get-parking (§3.2.4).
#[derive(Debug, Default, Clone)]
pub struct DhtShard {
    /// Elements stored under each logical key, in arrival order. Protocol
    /// keys are unique per slot, but the store tolerates reuse (Seap reuses
    /// position keys across DeleteMin phases) by queueing.
    store: HashMap<u64, VecDeque<Element>>,
    /// Gets waiting for their Put, in arrival order.
    parked: HashMap<u64, VecDeque<(NodeId, u64)>>,
}

impl DhtShard {
    /// An empty shard.
    pub fn new() -> Self {
        DhtShard::default()
    }

    /// Handle a routed request that was delivered to this node. Returns the
    /// direct responses to send.
    pub fn handle(&mut self, req: DhtReq) -> Vec<(NodeId, DhtResp)> {
        match req {
            DhtReq::Put {
                logical,
                elem,
                reply_to,
                id,
            } => {
                let mut out = Vec::with_capacity(2);
                out.push((reply_to, DhtResp::PutAck { id }));
                // A parked Get consumes the element immediately.
                if let Some(q) = self.parked.get_mut(&logical) {
                    let (getter, get_id) = q.pop_front().expect("parked queues are non-empty");
                    if q.is_empty() {
                        self.parked.remove(&logical);
                    }
                    out.push((getter, DhtResp::GetOk { id: get_id, elem }));
                } else {
                    self.store.entry(logical).or_default().push_back(elem);
                }
                out
            }
            DhtReq::Get {
                logical,
                reply_to,
                id,
            } => {
                if let Some(q) = self.store.get_mut(&logical) {
                    let elem = q.pop_front().expect("store queues are non-empty");
                    if q.is_empty() {
                        self.store.remove(&logical);
                    }
                    vec![(reply_to, DhtResp::GetOk { id, elem })]
                } else {
                    self.parked
                        .entry(logical)
                        .or_default()
                        .push_back((reply_to, id));
                    Vec::new()
                }
            }
        }
    }

    /// Number of stored elements (parked Gets excluded).
    pub fn len(&self) -> usize {
        self.store.values().map(VecDeque::len).sum()
    }

    /// No elements stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of Gets currently waiting for their Put.
    pub fn parked_count(&self) -> usize {
        self.parked.values().map(VecDeque::len).sum()
    }

    /// Drain everything — the handover a leaving node performs (its
    /// successor re-ingests the returned pairs).
    pub fn drain_all(&mut self) -> Vec<(u64, Element)> {
        let mut out: Vec<(u64, Element)> = self
            .store
            .drain()
            .flat_map(|(k, q)| q.into_iter().map(move |e| (k, e)))
            .collect();
        out.sort_by_key(|(k, e)| (*k, e.id));
        out
    }

    /// Re-ingest handed-over pairs (join/leave path).
    pub fn ingest(&mut self, pairs: impl IntoIterator<Item = (u64, Element)>) {
        for (k, e) in pairs {
            self.store.entry(k).or_default().push_back(e);
        }
    }

    /// Remove and return every stored element matching the predicate, in
    /// ascending element-key order. Seap's DeleteMin phase uses this to
    /// pull the locally stored elements among the k smallest out of their
    /// random-key slots before re-storing them under position keys (§5.2).
    pub fn extract_matching(
        &mut self,
        mut pred: impl FnMut(u64, &Element) -> bool,
    ) -> Vec<Element> {
        let mut out = Vec::new();
        self.store.retain(|&k, q| {
            let mut kept = VecDeque::with_capacity(q.len());
            for e in q.drain(..) {
                if pred(k, &e) {
                    out.push(e);
                } else {
                    kept.push_back(e);
                }
            }
            *q = kept;
            !q.is_empty()
        });
        out.sort();
        out
    }

    /// Iterate stored elements (any order).
    pub fn elements(&self) -> impl Iterator<Item = (u64, &Element)> {
        self.store
            .iter()
            .flat_map(|(&k, q)| q.iter().map(move |e| (k, e)))
    }
}

impl dpq_core::StateHash for DhtShard {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        // HashMaps are hashed as multisets of (key, ordered queue) entries
        // so rebuild order never perturbs the digest.
        h.write_unordered(self.store.iter(), |h, (k, q)| {
            h.write_u64(*k);
            q.state_hash(h);
        });
        h.write_unordered(self.parked.iter(), |h, (k, q)| {
            h.write_u64(*k);
            q.state_hash(h);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Priority};

    fn elem(seq: u64) -> Element {
        Element::new(ElemId::compose(NodeId(0), seq), Priority(seq), 0)
    }

    #[test]
    fn put_then_get_roundtrips() {
        let mut s = DhtShard::new();
        let acks = s.handle(DhtReq::Put {
            logical: 7,
            elem: elem(1),
            reply_to: NodeId(3),
            id: 100,
        });
        assert!(matches!(acks[0], (NodeId(3), DhtResp::PutAck { id: 100 })));
        assert_eq!(s.len(), 1);
        let got = s.handle(DhtReq::Get {
            logical: 7,
            reply_to: NodeId(5),
            id: 200,
        });
        assert!(matches!(got[0], (NodeId(5), DhtResp::GetOk { id: 200, elem: e }) if e == elem(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn get_before_put_parks_and_resolves() {
        let mut s = DhtShard::new();
        let none = s.handle(DhtReq::Get {
            logical: 9,
            reply_to: NodeId(4),
            id: 1,
        });
        assert!(none.is_empty());
        assert_eq!(s.parked_count(), 1);
        let out = s.handle(DhtReq::Put {
            logical: 9,
            elem: elem(2),
            reply_to: NodeId(8),
            id: 2,
        });
        // PutAck to the putter AND GetOk to the parked getter.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], (NodeId(8), DhtResp::PutAck { id: 2 })));
        assert!(matches!(out[1], (NodeId(4), DhtResp::GetOk { id: 1, .. })));
        assert!(s.is_empty());
        assert_eq!(s.parked_count(), 0);
    }

    #[test]
    fn key_reuse_queues_fifo() {
        let mut s = DhtShard::new();
        for i in 0..3 {
            s.handle(DhtReq::Put {
                logical: 1,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        for i in 0..3 {
            let out = s.handle(DhtReq::Get {
                logical: 1,
                reply_to: NodeId(0),
                id: 10 + i,
            });
            assert!(matches!(out[0].1, DhtResp::GetOk { elem: e, .. } if e == elem(i)));
        }
    }

    #[test]
    fn multiple_parked_gets_resolve_in_order() {
        let mut s = DhtShard::new();
        for i in 0..2 {
            s.handle(DhtReq::Get {
                logical: 5,
                reply_to: NodeId(i),
                id: i,
            });
        }
        let first = s.handle(DhtReq::Put {
            logical: 5,
            elem: elem(0),
            reply_to: NodeId(9),
            id: 50,
        });
        assert!(matches!(
            first[1],
            (NodeId(0), DhtResp::GetOk { id: 0, .. })
        ));
        assert_eq!(s.parked_count(), 1);
        let second = s.handle(DhtReq::Put {
            logical: 5,
            elem: elem(1),
            reply_to: NodeId(9),
            id: 51,
        });
        assert!(matches!(
            second[1],
            (NodeId(1), DhtResp::GetOk { id: 1, .. })
        ));
        assert_eq!(s.parked_count(), 0);
    }

    #[test]
    fn drain_and_ingest_preserve_contents() {
        let mut a = DhtShard::new();
        for i in 0..5 {
            a.handle(DhtReq::Put {
                logical: i % 2,
                elem: elem(i),
                reply_to: NodeId(0),
                id: i,
            });
        }
        let pairs = a.drain_all();
        assert_eq!(pairs.len(), 5);
        assert!(a.is_empty());
        let mut b = DhtShard::new();
        b.ingest(pairs);
        assert_eq!(b.len(), 5);
    }
}
