//! A self-contained DHT node protocol: router + shard + client.
//!
//! This is the standalone wiring used by the DHT's own end-to-end tests and
//! by experiment E12 (Lemma 2.2(iii)/(iv): request hops and storage
//! fairness). Skeap and Seap embed the same three components inside their
//! richer message enums.

use crate::client::{Completion, DhtClient};
use crate::msgs::{point_for, DhtReq, DhtResp};
use crate::shard::DhtShard;
use dpq_core::bitsize::tag_bits;
use dpq_core::{BitSize, Element, NodeId};
use dpq_overlay::routing::{advance, RouteMsg, RouteOutcome};
use dpq_overlay::NodeView;
use dpq_sim::{Ctx, Protocol};

/// Wire alphabet of the standalone DHT protocol.
#[derive(Debug, Clone)]
pub enum DhtWire {
    /// A request being routed to its key's manager.
    Route(RouteMsg<DhtReq>),
    /// A response returning to the requester.
    Resp(DhtResp),
}

impl BitSize for DhtWire {
    fn bits(&self) -> u64 {
        tag_bits(2)
            + match self {
                DhtWire::Route(m) => m.bits(),
                DhtWire::Resp(r) => r.bits(),
            }
    }
}

/// One node running only the DHT.
pub struct DhtNode {
    /// Local topology knowledge.
    pub view: NodeView,
    /// The key segments this node stores.
    pub shard: DhtShard,
    /// Outstanding-request bookkeeping.
    pub client: DhtClient,
    /// Completed requests, in completion order.
    pub completions: Vec<Completion>,
    /// Requests queued locally, sent at the next activation (the paper's
    /// nodes act "upon activation").
    queue: Vec<(f64, DhtReq)>,
}

impl DhtNode {
    /// A fresh node over the given view.
    pub fn new(view: NodeView) -> Self {
        DhtNode {
            view,
            shard: DhtShard::new(),
            client: DhtClient::new(),
            completions: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// Queue a Put of `elem` under `logical` within hash `domain`.
    pub fn enqueue_put(&mut self, domain: u64, logical: u64, elem: Element, token: u64) {
        let req = self.client.put(self.view.me(), logical, elem, token);
        self.queue.push((point_for(domain, logical), req));
    }

    /// Queue a Get of `logical` within hash `domain`.
    pub fn enqueue_get(&mut self, domain: u64, logical: u64, token: u64) {
        let req = self.client.get(self.view.me(), logical, token);
        self.queue.push((point_for(domain, logical), req));
    }

    fn dispatch(&mut self, msg: RouteMsg<DhtReq>, ctx: &mut Ctx<DhtWire>) {
        match advance(&self.view, msg) {
            RouteOutcome::Delivered { payload, .. } => {
                for (to, resp) in self.shard.handle(payload) {
                    ctx.send(to, DhtWire::Resp(resp));
                }
            }
            RouteOutcome::Forward { to, msg } => ctx.send(to, DhtWire::Route(msg)),
        }
    }
}

impl Protocol for DhtNode {
    type Msg = DhtWire;

    fn on_activate(&mut self, ctx: &mut Ctx<DhtWire>) {
        for (point, req) in std::mem::take(&mut self.queue) {
            let msg = RouteMsg::start(self.view.me(), point, req);
            self.dispatch(msg, ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: DhtWire, ctx: &mut Ctx<DhtWire>) {
        match msg {
            DhtWire::Route(m) => self.dispatch(m, ctx),
            DhtWire::Resp(r) => {
                let c = self.client.on_response(&r);
                self.completions.push(c);
            }
        }
    }

    fn done(&self) -> bool {
        self.queue.is_empty() && self.client.idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::hashing::domains;
    use dpq_core::{DetRng, ElemId, Priority};
    use dpq_overlay::Topology;
    use dpq_sim::{AsyncScheduler, SyncScheduler};

    fn cluster(n: usize, seed: u64) -> Vec<DhtNode> {
        let topo = Topology::new(n, seed);
        NodeView::extract_all(&topo)
            .into_iter()
            .map(DhtNode::new)
            .collect()
    }

    fn elem(node: u64, seq: u64) -> Element {
        Element::new(ElemId::compose(NodeId(node), seq), Priority(seq), 0)
    }

    #[test]
    fn puts_then_gets_roundtrip_synchronously() {
        let mut sched = SyncScheduler::new(cluster(16, 40));
        let m = 64u64;
        for k in 0..m {
            let v = (k % 16) as usize;
            sched.nodes_mut()[v].enqueue_put(domains::SKEAP_KEY, k, elem(v as u64, k), k);
        }
        assert!(sched.run_until_quiescent(500).is_quiescent());
        for k in 0..m {
            let v = ((k + 5) % 16) as usize;
            sched.nodes_mut()[v].enqueue_get(domains::SKEAP_KEY, k, k);
        }
        assert!(sched.run_until_quiescent(500).is_quiescent());
        let got: usize = sched
            .nodes()
            .iter()
            .map(|n| {
                n.completions
                    .iter()
                    .filter(|c| matches!(c, Completion::GotElement { .. }))
                    .count()
            })
            .sum();
        assert_eq!(got as u64, m);
        assert!(sched.nodes().iter().all(|n| n.shard.is_empty()));
    }

    #[test]
    fn gets_issued_before_puts_park_and_resolve_async() {
        for seed in 0..5 {
            let mut sched = AsyncScheduler::new(cluster(12, 41), seed);
            let m = 30u64;
            // Gets first — they must park.
            for k in 0..m {
                let v = (k % 12) as usize;
                sched.nodes_mut()[v].enqueue_get(domains::SKEAP_KEY, k, k);
            }
            for k in 0..m {
                let v = ((k * 7) % 12) as usize;
                sched.nodes_mut()[v].enqueue_put(domains::SKEAP_KEY, k, elem(v as u64, k), k);
            }
            assert!(
                sched.run_until_quiescent(2_000_000),
                "seed {seed} did not quiesce"
            );
            let got: usize = sched
                .nodes()
                .iter()
                .map(|n| {
                    n.completions
                        .iter()
                        .filter(|c| matches!(c, Completion::GotElement { .. }))
                        .count()
                })
                .sum();
            assert_eq!(got as u64, m, "seed {seed}");
            let parked: usize = sched.nodes().iter().map(|n| n.shard.parked_count()).sum();
            assert_eq!(parked, 0);
        }
    }

    #[test]
    fn storage_load_is_fair() {
        // Lemma 2.2(iv): m elements spread over n nodes ⇒ m/n each on
        // expectation. With m = 64n, demand every node holds something and
        // the max load is within a small factor of the mean.
        let n = 32;
        let mut sched = SyncScheduler::new(cluster(n, 42));
        let m = 64 * n as u64;
        let mut rng = DetRng::new(7);
        for k in 0..m {
            let v = rng.below(n as u64) as usize;
            sched.nodes_mut()[v].enqueue_put(domains::SKEAP_KEY, k, elem(v as u64, k), k);
        }
        assert!(sched.run_until_quiescent(2_000).is_quiescent());
        let loads: Vec<usize> = sched.nodes().iter().map(|n| n.shard.len()).collect();
        assert_eq!(loads.iter().sum::<usize>() as u64, m);
        let mean = m as f64 / n as f64;
        let max = *loads.iter().max().unwrap() as f64;
        // Virtual-node sampling gives ~3 exponential segments per node; a
        // 6x cap on the max/mean ratio is comfortably above the expectation
        // but far below pathological skew.
        assert!(max < 6.0 * mean, "max load {max} vs mean {mean}");
    }

    #[test]
    fn request_hops_stay_logarithmic() {
        // Lemma 2.2(iii): O(log n) rounds per request w.h.p. — in the sync
        // scheduler a single request's rounds == its hops.
        for n in [8usize, 64, 256] {
            let mut sched = SyncScheduler::new(cluster(n, 43));
            sched.nodes_mut()[0].enqueue_put(domains::SKEAP_KEY, 12345, elem(0, 0), 0);
            let out = sched.run_until_quiescent(10_000);
            assert!(out.is_quiescent());
            let limit = 10.0 * (n as f64).log2() + 20.0;
            assert!(
                (out.rounds() as f64) < limit,
                "n={n}: one put took {} rounds",
                out.rounds()
            );
        }
    }
}
