//! # dpq-dht
//!
//! The distributed hash table the aggregation tree embeds (Lemma 2.2(ii–iv)).
//!
//! * `Put(k, e)` stores element `e` at the virtual node managing the
//!   pseudorandom point derived from the logical key `k`; `Get(k, v)`
//!   removes the element stored under `k` and delivers it back to `v`.
//! * Requests are routed over the LDB (O(log n) hops w.h.p., Lemma 2.2(iii));
//!   replies travel directly — the requester's reference is carried in the
//!   request, and in the paper's model a known node is a usable edge.
//! * **Parking**: "it may happen that a Get request arrives at the correct
//!   node before the corresponding Put … the Get waits at that node until
//!   the Put has arrived" (§3.2.4). [`DhtShard`] implements exactly that.
//! * Fairness (Lemma 2.2(iv)): keys hash uniformly, so each node manages a
//!   Θ(1/n) share of the key space in expectation — experiment E12 measures
//!   the realised load.
//!
//! The pieces are sans-IO components: protocol state machines own a
//! [`DhtShard`] (server side) and a [`DhtClient`] (request bookkeeping) and
//! wire the messages through their own message enum.

#![warn(missing_docs)]

pub mod client;
pub mod msgs;
pub mod node;
pub mod shard;

pub use client::Completion;
pub use client::DhtClient;
pub use msgs::{point_for, DhtReq, DhtResp};
pub use node::{DhtNode, DhtWire};
pub use shard::DhtShard;
