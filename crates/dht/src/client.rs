//! Client side: request-id bookkeeping for a node issuing Puts and Gets.

use crate::msgs::{DhtReq, DhtResp};
use dpq_core::{Element, NodeId};
use std::collections::HashMap;

/// Tracks a node's outstanding DHT requests and maps responses back to the
/// caller-supplied token (e.g. the local operation the request serves).
#[derive(Debug, Default, Clone)]
pub struct DhtClient {
    next_id: u64,
    puts: HashMap<u64, u64>,
    gets: HashMap<u64, u64>,
}

impl DhtClient {
    /// A client with no outstanding requests.
    pub fn new() -> Self {
        DhtClient::default()
    }

    /// Build a Put request tagged with `token`.
    pub fn put(&mut self, me: NodeId, logical: u64, elem: Element, token: u64) -> DhtReq {
        let id = self.next_id;
        self.next_id += 1;
        self.puts.insert(id, token);
        DhtReq::Put {
            logical,
            elem,
            reply_to: me,
            id,
        }
    }

    /// Build a Get request tagged with `token`.
    pub fn get(&mut self, me: NodeId, logical: u64, token: u64) -> DhtReq {
        let id = self.next_id;
        self.next_id += 1;
        self.gets.insert(id, token);
        DhtReq::Get {
            logical,
            reply_to: me,
            id,
        }
    }

    /// Resolve a response to its token.
    pub fn on_response(&mut self, resp: &DhtResp) -> Completion {
        match resp {
            DhtResp::PutAck { id } => {
                let token = self.puts.remove(id).expect("ack for unknown put");
                Completion::PutDone { token }
            }
            DhtResp::GetOk { id, elem } => {
                let token = self.gets.remove(id).expect("reply for unknown get");
                Completion::GotElement { token, elem: *elem }
            }
        }
    }

    /// Outstanding request count (both kinds).
    pub fn outstanding(&self) -> usize {
        self.puts.len() + self.gets.len()
    }

    /// Unconfirmed Puts.
    pub fn outstanding_puts(&self) -> usize {
        self.puts.len()
    }

    /// Unanswered Gets.
    pub fn outstanding_gets(&self) -> usize {
        self.gets.len()
    }

    /// Nothing outstanding.
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }
}

/// A resolved DHT request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A Put was confirmed.
    PutDone {
        /// The caller-supplied token.
        token: u64,
    },
    /// A Get returned its element.
    GotElement {
        /// The caller-supplied token.
        token: u64,
        /// The fetched element.
        elem: Element,
    },
}

impl dpq_core::StateHash for DhtClient {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        h.write_u64(self.next_id);
        h.write_unordered(self.puts.iter(), |h, (k, v)| {
            h.write_u64(*k);
            h.write_u64(*v);
        });
        h.write_unordered(self.gets.iter(), |h, (k, v)| {
            h.write_u64(*k);
            h.write_u64(*v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Priority};

    fn elem() -> Element {
        Element::new(ElemId::compose(NodeId(1), 1), Priority(2), 3)
    }

    #[test]
    fn tokens_roundtrip_through_ids() {
        let mut c = DhtClient::new();
        let req = c.put(NodeId(0), 5, elem(), 777);
        let DhtReq::Put { id, .. } = req else {
            panic!("expected put")
        };
        assert_eq!(c.outstanding(), 1);
        let done = c.on_response(&DhtResp::PutAck { id });
        assert_eq!(done, Completion::PutDone { token: 777 });
        assert!(c.idle());
    }

    #[test]
    fn get_resolution_carries_element() {
        let mut c = DhtClient::new();
        let DhtReq::Get { id, .. } = c.get(NodeId(0), 9, 42) else {
            panic!("expected get")
        };
        let done = c.on_response(&DhtResp::GetOk { id, elem: elem() });
        assert_eq!(
            done,
            Completion::GotElement {
                token: 42,
                elem: elem()
            }
        );
    }

    #[test]
    fn ids_are_unique_across_kinds() {
        let mut c = DhtClient::new();
        let a = c.put(NodeId(0), 1, elem(), 0);
        let b = c.get(NodeId(0), 1, 0);
        let (DhtReq::Put { id: ia, .. }, DhtReq::Get { id: ib, .. }) = (a, b) else {
            panic!()
        };
        assert_ne!(ia, ib);
        assert_eq!(c.outstanding_puts(), 1);
        assert_eq!(c.outstanding_gets(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown put")]
    fn stray_ack_panics() {
        let mut c = DhtClient::new();
        c.on_response(&DhtResp::PutAck { id: 99 });
    }
}
