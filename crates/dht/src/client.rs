//! Client side: request-id bookkeeping for a node issuing Puts and Gets.

use crate::msgs::{DhtReq, DhtResp};
use dpq_core::{Element, NodeId};

/// Tracks a node's outstanding DHT requests and maps responses back to the
/// caller-supplied token (e.g. the local operation the request serves).
///
/// Request ids come from a monotone counter, so pushing onto the end of a
/// flat `(id, token)` vector keeps it sorted for free; resolutions
/// binary-search and `remove`, which preserves order. Outstanding counts
/// are one round's requests at most, so the former pair of `HashMap`s paid
/// more in table overhead than the shifts cost here.
#[derive(Debug, Default, Clone)]
pub struct DhtClient {
    next_id: u64,
    /// Outstanding puts: `(request id, caller token)`, sorted by id.
    puts: Vec<(u64, u64)>,
    /// Outstanding gets, same layout.
    gets: Vec<(u64, u64)>,
}

/// Remove `id` from an id-sorted `(id, token)` vector, returning its token.
/// Releases the buffer once the last entry drains, so an idle client holds
/// no heap at all.
fn take(v: &mut Vec<(u64, u64)>, id: u64) -> Option<u64> {
    let at = v.binary_search_by_key(&id, |e| e.0).ok()?;
    let (_, token) = v.remove(at);
    if v.is_empty() {
        *v = Vec::new();
    }
    Some(token)
}

impl DhtClient {
    /// A client with no outstanding requests.
    pub fn new() -> Self {
        DhtClient::default()
    }

    /// Build a Put request tagged with `token`.
    pub fn put(&mut self, me: NodeId, logical: u64, elem: Element, token: u64) -> DhtReq {
        let id = self.next_id;
        self.next_id += 1;
        self.puts.push((id, token));
        DhtReq::Put {
            logical,
            elem,
            reply_to: me,
            id,
        }
    }

    /// Build a Get request tagged with `token`.
    pub fn get(&mut self, me: NodeId, logical: u64, token: u64) -> DhtReq {
        let id = self.next_id;
        self.next_id += 1;
        self.gets.push((id, token));
        DhtReq::Get {
            logical,
            reply_to: me,
            id,
        }
    }

    /// Resolve a response to its token.
    pub fn on_response(&mut self, resp: &DhtResp) -> Completion {
        match resp {
            DhtResp::PutAck { id } => {
                let token = take(&mut self.puts, *id).expect("ack for unknown put");
                Completion::PutDone { token }
            }
            DhtResp::GetOk { id, elem } => {
                let token = take(&mut self.gets, *id).expect("reply for unknown get");
                Completion::GotElement { token, elem: *elem }
            }
        }
    }

    /// Outstanding request count (both kinds).
    pub fn outstanding(&self) -> usize {
        self.puts.len() + self.gets.len()
    }

    /// Unconfirmed Puts.
    pub fn outstanding_puts(&self) -> usize {
        self.puts.len()
    }

    /// Unanswered Gets.
    pub fn outstanding_gets(&self) -> usize {
        self.gets.len()
    }

    /// Nothing outstanding.
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }
}

/// A resolved DHT request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A Put was confirmed.
    PutDone {
        /// The caller-supplied token.
        token: u64,
    },
    /// A Get returned its element.
    GotElement {
        /// The caller-supplied token.
        token: u64,
        /// The fetched element.
        elem: Element,
    },
}

impl dpq_core::StateHash for DhtClient {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        h.write_u64(self.next_id);
        // Digest-compatible with the former HashMap layout: unordered
        // multisets of (id, token) pairs.
        h.write_unordered(self.puts.iter(), |h, &(k, v)| {
            h.write_u64(k);
            h.write_u64(v);
        });
        h.write_unordered(self.gets.iter(), |h, &(k, v)| {
            h.write_u64(k);
            h.write_u64(v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Priority};

    fn elem() -> Element {
        Element::new(ElemId::compose(NodeId(1), 1), Priority(2), 3)
    }

    #[test]
    fn tokens_roundtrip_through_ids() {
        let mut c = DhtClient::new();
        let req = c.put(NodeId(0), 5, elem(), 777);
        let DhtReq::Put { id, .. } = req else {
            panic!("expected put")
        };
        assert_eq!(c.outstanding(), 1);
        let done = c.on_response(&DhtResp::PutAck { id });
        assert_eq!(done, Completion::PutDone { token: 777 });
        assert!(c.idle());
    }

    #[test]
    fn get_resolution_carries_element() {
        let mut c = DhtClient::new();
        let DhtReq::Get { id, .. } = c.get(NodeId(0), 9, 42) else {
            panic!("expected get")
        };
        let done = c.on_response(&DhtResp::GetOk { id, elem: elem() });
        assert_eq!(
            done,
            Completion::GotElement {
                token: 42,
                elem: elem()
            }
        );
    }

    #[test]
    fn ids_are_unique_across_kinds() {
        let mut c = DhtClient::new();
        let a = c.put(NodeId(0), 1, elem(), 0);
        let b = c.get(NodeId(0), 1, 0);
        let (DhtReq::Put { id: ia, .. }, DhtReq::Get { id: ib, .. }) = (a, b) else {
            panic!()
        };
        assert_ne!(ia, ib);
        assert_eq!(c.outstanding_puts(), 1);
        assert_eq!(c.outstanding_gets(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown put")]
    fn stray_ack_panics() {
        let mut c = DhtClient::new();
        c.on_response(&DhtResp::PutAck { id: 99 });
    }

    #[test]
    fn out_of_order_resolution_keeps_lookup_correct() {
        let mut c = DhtClient::new();
        let ids: Vec<u64> = (0..4)
            .map(|i| match c.put(NodeId(0), i, elem(), 100 + i) {
                DhtReq::Put { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        // Ack the middle ones first, then the ends.
        for &i in &[1usize, 2, 0, 3] {
            let done = c.on_response(&DhtResp::PutAck { id: ids[i] });
            assert_eq!(
                done,
                Completion::PutDone {
                    token: 100 + i as u64
                }
            );
        }
        assert!(c.idle());
    }
}
