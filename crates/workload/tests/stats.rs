//! Statistical conformance of the workload generators.
//!
//! Every test here is **seeded and deterministic** — the sample streams are
//! fixed byte-for-byte by `DetRng`, so these are regression pins with a
//! statistical *interpretation*, not flaky hypothesis tests. The thresholds
//! are standard critical values with headroom; a failure means the sampler
//! chain changed (and golden schedules moved with it), not that the dice
//! came up cold.
//!
//! * **Zipf** — Pearson chi-square goodness-of-fit against the exact pmf
//!   for s ∈ {0.8, 1.0, 1.2}. 64 support points ⇒ 63 degrees of freedom;
//!   the χ²₀.₉₉₉ critical value is ≈ 103.4, we allow 110.
//! * **Poisson** — Kolmogorov–Smirnov distance between the empirical gap
//!   CDF and 1 − e^(−λx). The α = 0.01 critical distance is 1.63/√N; we
//!   allow exactly that.
//! * **MMPP** — event-level dwell accounting: mean contiguous dwell in each
//!   state must sit within 5 % of the configured means, and the per-state
//!   arrival rates within 5 % of λ and burst_mult·λ.

use dpq_core::DetRng;
use dpq_workload::{Mmpp, Poisson, Zipf};

/// Pearson chi-square statistic of `samples` draws from `zipf` against its
/// exact pmf.
fn zipf_chi_square(s: f64, seed: u64, samples: u64) -> f64 {
    let n = 64u64;
    let zipf = Zipf::new(n, s);
    let mut rng = DetRng::new(seed);
    let mut counts = vec![0u64; n as usize];
    for _ in 0..samples {
        counts[zipf.sample(&mut rng) as usize] += 1;
    }
    let mut chi2 = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        let expected = samples as f64 * zipf.pmf(k as u64);
        assert!(
            expected >= 5.0,
            "cell {k} expected count {expected:.2} too small for the chi-square approximation"
        );
        let d = c as f64 - expected;
        chi2 += d * d / expected;
    }
    chi2
}

#[test]
fn zipf_passes_chi_square_gof_across_exponents() {
    // 63 degrees of freedom: χ²₀.₉₅ ≈ 82.5, χ²₀.₉₉₉ ≈ 103.4.
    for (s, seed) in [(0.8, 0xA11A51), (1.0, 0xA11A52), (1.2, 0xA11A53)] {
        let chi2 = zipf_chi_square(s, seed, 200_000);
        assert!(
            chi2 < 110.0,
            "zipf s={s}: chi-square {chi2:.1} exceeds the 0.999 critical region"
        );
    }
}

#[test]
fn zipf_chi_square_is_deterministic() {
    let a = zipf_chi_square(1.0, 7, 50_000);
    let b = zipf_chi_square(1.0, 7, 50_000);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn poisson_gaps_pass_kolmogorov_smirnov() {
    let rate = 4.0;
    let n = 100_000usize;
    let p = Poisson::new(rate);
    let mut rng = DetRng::new(0x0150_5505);
    let mut gaps: Vec<f64> = (0..n).map(|_| p.next_gap(&mut rng)).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // KS distance against the exponential CDF, both one-sided gaps.
    let mut d: f64 = 0.0;
    for (i, &x) in gaps.iter().enumerate() {
        let cdf = 1.0 - (-rate * x).exp();
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    let critical = 1.63 / (n as f64).sqrt(); // α = 0.01
    assert!(
        d < critical,
        "KS distance {d:.5} exceeds the α=0.01 critical value {critical:.5}"
    );
}

#[test]
fn mmpp_dwell_times_and_per_state_rates_match_the_spec() {
    let (rate, burst_mult, dwell_calm, dwell_burst) = (2.0, 8.0, 32.0, 8.0);
    let mut mmpp = Mmpp::new(rate, burst_mult, dwell_calm, dwell_burst);
    let mut rng = DetRng::new(0xD3E11);

    // Event-level accounting: time and arrivals per state, and completed
    // contiguous dwell periods (a switch event closes one).
    let mut time = [0.0f64; 2]; // [calm, burst]
    let mut arrivals = [0u64; 2];
    let mut periods = [0u64; 2];
    let mut dwell = [0.0f64; 2];
    let mut current = 0.0f64;
    for _ in 0..2_000_000 {
        let ev = mmpp.next_event(&mut rng);
        let s = ev.state as usize;
        time[s] += ev.gap;
        current += ev.gap;
        if ev.is_arrival {
            arrivals[s] += 1;
        } else {
            periods[s] += 1;
            dwell[s] += current;
            current = 0.0;
        }
    }

    let mean_calm = dwell[0] / periods[0] as f64;
    let mean_burst = dwell[1] / periods[1] as f64;
    assert!(
        (mean_calm / dwell_calm - 1.0).abs() < 0.05,
        "mean calm dwell {mean_calm:.2} vs configured {dwell_calm}"
    );
    assert!(
        (mean_burst / dwell_burst - 1.0).abs() < 0.05,
        "mean burst dwell {mean_burst:.2} vs configured {dwell_burst}"
    );

    let rate_calm = arrivals[0] as f64 / time[0];
    let rate_burst = arrivals[1] as f64 / time[1];
    assert!(
        (rate_calm / rate - 1.0).abs() < 0.05,
        "calm arrival rate {rate_calm:.3} vs configured {rate}"
    );
    assert!(
        (rate_burst / (rate * burst_mult) - 1.0).abs() < 0.05,
        "burst arrival rate {rate_burst:.3} vs configured {}",
        rate * burst_mult
    );

    // The long-run time split must match the dwell ratio.
    let calm_frac = time[0] / (time[0] + time[1]);
    let expect = dwell_calm / (dwell_calm + dwell_burst);
    assert!(
        (calm_frac - expect).abs() < 0.02,
        "calm time fraction {calm_frac:.3} vs expected {expect:.3}"
    );
}
