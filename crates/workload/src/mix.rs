//! Priority mixes: which priority the next insert carries.
//!
//! Skeap's priority universe is constant and small (`prio < n_prios`, a
//! hard assertion in `SkeapNode::issue`), so every mix maps into
//! `0..n_prios`. The adversarial mixes attack specific structures:
//!
//! * **FifoAdversarial** — every insert at priority 0. The heap degenerates
//!   to a FIFO on the ElemId tiebreaker; relaxed queues that shortcut on
//!   priority alone reorder freely here, so rank error is maximally visible.
//! * **LifoAdversarial** — descending priority cycles: each insert (within
//!   a cycle) becomes the new minimum, forcing constant min-turnover.
//! * **Sawtooth** — a rising ramp that repeatedly resets, alternately
//!   starving and flooding the low-priority end.
//! * **HotKey** — a contended head: probability `hot_frac` of priority 0,
//!   the rest uniform over the remainder.

use crate::zipf::Zipf;
use dpq_core::DetRng;

/// The shape of the priority distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixKind {
    /// Uniform over the universe.
    Uniform,
    /// Zipf(s)-skewed: priority k with probability ∝ (k+1)^-s.
    Zipf {
        /// Skew exponent.
        s: f64,
    },
    /// All inserts at priority 0 (FIFO on the tiebreaker).
    FifoAdversarial,
    /// Descending cycles; each insert undercuts the previous.
    LifoAdversarial,
    /// Rising ramp of the given period, then reset.
    Sawtooth {
        /// Ramp length in inserts.
        period: u64,
    },
    /// Hot head: priority 0 with probability `hot_frac`, rest uniform.
    HotKey {
        /// Probability of hitting the hot priority.
        hot_frac: f64,
    },
}

/// A stateful priority generator over `0..n_prios`.
#[derive(Debug, Clone)]
pub struct Mix {
    kind: MixKind,
    n_prios: u64,
    zipf: Option<Zipf>,
    /// Inserts emitted so far (drives the deterministic mixes).
    counter: u64,
}

impl Mix {
    /// Build a mix over the universe `0..n_prios`.
    pub fn new(kind: MixKind, n_prios: u64) -> Self {
        assert!(n_prios > 0, "priority universe must be non-empty");
        if let MixKind::Sawtooth { period } = kind {
            assert!(period > 0, "sawtooth period must be positive");
        }
        if let MixKind::HotKey { hot_frac } = kind {
            assert!((0.0..=1.0).contains(&hot_frac), "hot_frac must be in [0,1]");
        }
        let zipf = match kind {
            MixKind::Zipf { s } => Some(Zipf::new(n_prios, s)),
            _ => None,
        };
        Mix {
            kind,
            n_prios,
            zipf,
            counter: 0,
        }
    }

    /// Priority of the next insert. Always `< n_prios`.
    pub fn next_prio(&mut self, rng: &mut DetRng) -> u64 {
        let i = self.counter;
        self.counter += 1;
        match self.kind {
            MixKind::Uniform => rng.below(self.n_prios),
            MixKind::Zipf { .. } => self.zipf.as_ref().expect("zipf built in new").sample(rng),
            MixKind::FifoAdversarial => 0,
            MixKind::LifoAdversarial => self.n_prios - 1 - (i % self.n_prios),
            MixKind::Sawtooth { period } => (i % period) * self.n_prios / period,
            MixKind::HotKey { hot_frac } => {
                if rng.chance(hot_frac) || self.n_prios == 1 {
                    0
                } else {
                    rng.range(1, self.n_prios - 1)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draws(kind: MixKind, n_prios: u64, count: usize) -> Vec<u64> {
        let mut m = Mix::new(kind, n_prios);
        let mut rng = DetRng::new(5);
        (0..count).map(|_| m.next_prio(&mut rng)).collect()
    }

    #[test]
    fn every_mix_stays_in_universe() {
        for kind in [
            MixKind::Uniform,
            MixKind::Zipf { s: 1.0 },
            MixKind::FifoAdversarial,
            MixKind::LifoAdversarial,
            MixKind::Sawtooth { period: 7 },
            MixKind::HotKey { hot_frac: 0.9 },
        ] {
            for p in draws(kind, 5, 1000) {
                assert!(p < 5, "{kind:?} escaped the universe: {p}");
            }
        }
    }

    #[test]
    fn fifo_is_all_zero() {
        assert!(draws(MixKind::FifoAdversarial, 8, 100)
            .iter()
            .all(|&p| p == 0));
    }

    #[test]
    fn lifo_descends_within_each_cycle() {
        let d = draws(MixKind::LifoAdversarial, 4, 8);
        assert_eq!(d, vec![3, 2, 1, 0, 3, 2, 1, 0]);
    }

    #[test]
    fn sawtooth_ramps_and_resets() {
        let d = draws(MixKind::Sawtooth { period: 4 }, 8, 8);
        assert_eq!(d, vec![0, 2, 4, 6, 0, 2, 4, 6]);
    }

    #[test]
    fn hotkey_concentrates_on_zero() {
        let d = draws(MixKind::HotKey { hot_frac: 0.8 }, 16, 10_000);
        let zeros = d.iter().filter(|&&p| p == 0).count();
        assert!((7_500..8_500).contains(&zeros), "zeros {zeros}");
        assert!(d.iter().any(|&p| p != 0));
    }

    #[test]
    fn zipf_mix_skews_low() {
        let d = draws(MixKind::Zipf { s: 1.2 }, 16, 10_000);
        let low = d.iter().filter(|&&p| p < 4).count();
        assert!(low > 6_000, "low-priority mass {low}");
    }

    #[test]
    fn single_prio_universe_never_panics() {
        for kind in [
            MixKind::Uniform,
            MixKind::Zipf { s: 1.0 },
            MixKind::LifoAdversarial,
            MixKind::Sawtooth { period: 3 },
            MixKind::HotKey { hot_frac: 0.5 },
        ] {
            assert!(draws(kind, 1, 100).iter().all(|&p| p == 0));
        }
    }
}
