//! Rejection-free Zipf sampling via the Walker–Vose alias method.
//!
//! A Zipf(s) draw over `{0, …, n-1}` has pmf ∝ `(k+1)^-s`. The textbook
//! inverse-CDF approach needs a binary search per draw and the common
//! rejection sampler has unbounded worst-case cost; the alias table costs
//! O(n) once and then exactly one uniform draw plus one coin per sample —
//! the right trade for a generator that emits millions of priorities per
//! schedule.

use dpq_core::DetRng;

/// An alias table over an arbitrary finite distribution.
///
/// Sampling is O(1): pick a column uniformly, then flip a biased coin to
/// stay or take the column's alias.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each column, pre-scaled to [0,1).
    accept: Vec<f64>,
    /// Alias target of each column.
    alias: Vec<u64>,
}

impl AliasTable {
    /// Build the table from (unnormalised, non-negative) weights.
    ///
    /// Panics on an empty weight vector or a zero/negative total.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite total"
        );
        // Scale so the average column is exactly 1; columns < 1 are "small"
        // and get topped up by a "large" column, which donates its excess.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut accept = vec![1.0; n];
        let mut alias: Vec<u64> = (0..n as u64).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            accept[s] = scaled[s];
            alias[s] = l as u64;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is 1.0 up to rounding; keep accept = 1.
        AliasTable { accept, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// Is the table empty? (Never true: construction requires outcomes.)
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// One O(1) draw.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let col = rng.below(self.accept.len() as u64);
        if rng.unit() < self.accept[col as usize] {
            col
        } else {
            self.alias[col as usize]
        }
    }
}

/// Zipf(s) over `{0, …, n-1}`: pmf(k) ∝ (k+1)^-s.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: AliasTable,
    pmf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` outcomes with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs a positive universe");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite, >= 0"
        );
        let weights: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let pmf = weights.iter().map(|w| w / total).collect();
        Zipf {
            table: AliasTable::new(&weights),
            pmf,
        }
    }

    /// Universe size.
    pub fn n(&self) -> u64 {
        self.table.len() as u64
    }

    /// Exact probability of outcome `k` (for goodness-of-fit tests).
    pub fn pmf(&self, k: u64) -> f64 {
        self.pmf[k as usize]
    }

    /// One rejection-free draw.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_table_matches_exact_distribution() {
        // Weights with an exact closed form: {1, 2, 3, 4} → p = k/10.
        let t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut rng = DetRng::new(42);
        let mut counts = [0u64; 4];
        let draws = 400_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expected = draws as f64 * (k + 1) as f64 / 10.0;
            let err = (c as f64 - expected).abs() / expected;
            assert!(err < 0.02, "outcome {k}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(64, 1.0);
        let total: f64 = (0..64).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(32, 0.8);
        for k in 1..32 {
            assert!(z.pmf(k) < z.pmf(k - 1));
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(16, 0.0);
        for k in 0..16 {
            assert!((z.pmf(k) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(100, 1.2);
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
