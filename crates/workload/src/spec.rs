//! Open-loop workload specs and their on-disk TOML form.
//!
//! A spec is a *pure description*: the injection schedule is a deterministic
//! function of the spec alone ([`crate::schedule::Schedule::generate`]), so
//! a spec + seed names a workload the way a seed names a run. The TOML
//! parser follows the workspace convention (see `dpq-sim`'s fault plans):
//! hand-rolled, line-based, flat `key = value`, unknown keys are hard
//! errors — a typo must fail loudly, not silently run the default workload.

use crate::arrivals::{Arrivals, Mmpp, Poisson};
use crate::mix::{Mix, MixKind};

/// Which arrival process drives injections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless Poisson stream at the spec's `rate`.
    Poisson,
    /// 2-state MMPP: calm at `rate`, bursts at `rate × burst_mult`.
    Mmpp {
        /// Burst-state intensity multiplier (≥ 1).
        burst_mult: f64,
        /// Mean calm-state dwell, ticks.
        dwell_calm: f64,
        /// Mean burst-state dwell, ticks.
        dwell_burst: f64,
    },
}

/// A complete open-loop workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Cluster size the trace is multiplexed over.
    pub n: usize,
    /// Logical clients. Each arrival is attributed to a uniformly drawn
    /// client; a client always enters through the same (hashed) node, so
    /// millions of clients funnel through n stable entry points.
    pub clients: u64,
    /// Cluster-wide arrival rate, requests per simulated tick (the calm
    /// rate for MMPP).
    pub rate: f64,
    /// Horizon: arrivals are generated for ticks `0..ticks`.
    pub ticks: u64,
    /// Simulated ticks per scheduler round (the open-loop time base; see
    /// `SyncScheduler::set_ticks_per_round`).
    pub ticks_per_round: u64,
    /// Probability an arrival is an Insert (the rest are DeleteMin).
    pub insert_ratio: f64,
    /// Priority universe size (Skeap asserts `prio < n_prios`).
    pub n_prios: u64,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Priority mix for inserts.
    pub mix: MixKind,
    /// Workload seed.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// A small, balanced Poisson/uniform default — the starting point the
    /// TOML file mutates.
    pub fn base() -> Self {
        OpenLoopSpec {
            n: 8,
            clients: 10_000,
            rate: 4.0,
            ticks: 128,
            ticks_per_round: 4,
            insert_ratio: 0.6,
            n_prios: 16,
            arrivals: ArrivalSpec::Poisson,
            mix: MixKind::Uniform,
            seed: 1,
        }
    }

    /// Panic on a nonsensical spec (zero nodes, rates, horizons…).
    pub fn validate(&self) {
        assert!(self.n > 0, "spec needs nodes");
        assert!(self.clients > 0, "spec needs clients");
        assert!(
            self.rate > 0.0 && self.rate.is_finite(),
            "rate must be positive"
        );
        assert!(self.ticks > 0, "horizon must be positive");
        assert!(self.ticks_per_round > 0, "ticks_per_round must be positive");
        assert!(
            (0.0..=1.0).contains(&self.insert_ratio),
            "insert_ratio must be a probability"
        );
        assert!(self.n_prios > 0, "priority universe must be non-empty");
        if let ArrivalSpec::Mmpp {
            burst_mult,
            dwell_calm,
            dwell_burst,
        } = self.arrivals
        {
            assert!(burst_mult >= 1.0, "burst_mult must be >= 1");
            assert!(
                dwell_calm > 0.0 && dwell_burst > 0.0,
                "dwells must be positive"
            );
        }
    }

    /// Materialise the arrival process.
    pub fn arrivals(&self) -> Arrivals {
        match self.arrivals {
            ArrivalSpec::Poisson => Arrivals::Poisson(Poisson::new(self.rate)),
            ArrivalSpec::Mmpp {
                burst_mult,
                dwell_calm,
                dwell_burst,
            } => Arrivals::Mmpp(Mmpp::new(self.rate, burst_mult, dwell_calm, dwell_burst)),
        }
    }

    /// Materialise the priority mix.
    pub fn mix(&self) -> Mix {
        Mix::new(self.mix, self.n_prios)
    }

    /// Parse the flat TOML form. Every key optional (defaults from
    /// [`OpenLoopSpec::base`]); unknown keys are errors.
    pub fn from_toml(text: &str) -> Result<OpenLoopSpec, String> {
        let mut spec = OpenLoopSpec::base();
        // Mix/arrival parameters arrive in any key order; collect raw and
        // assemble at the end.
        let mut arrivals = "poisson".to_string();
        let mut burst_mult = 8.0;
        let mut dwell_calm = 32.0;
        let mut dwell_burst = 8.0;
        let mut mix = "uniform".to_string();
        let mut zipf_s = 1.0;
        let mut sawtooth_period = 32;
        let mut hot_frac = 0.9;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {line_no}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "n" => spec.n = parse_u64(value, line_no)? as usize,
                "clients" => spec.clients = parse_u64(value, line_no)?,
                "rate" => spec.rate = parse_f64(value, line_no)?,
                "ticks" => spec.ticks = parse_u64(value, line_no)?,
                "ticks_per_round" => spec.ticks_per_round = parse_u64(value, line_no)?,
                "insert_ratio" => spec.insert_ratio = parse_f64(value, line_no)?,
                "n_prios" => spec.n_prios = parse_u64(value, line_no)?,
                "seed" => spec.seed = parse_u64(value, line_no)?,
                "arrivals" => arrivals = parse_str(value, line_no)?,
                "burst_mult" => burst_mult = parse_f64(value, line_no)?,
                "dwell_calm" => dwell_calm = parse_f64(value, line_no)?,
                "dwell_burst" => dwell_burst = parse_f64(value, line_no)?,
                "mix" => mix = parse_str(value, line_no)?,
                "zipf_s" => zipf_s = parse_f64(value, line_no)?,
                "sawtooth_period" => sawtooth_period = parse_u64(value, line_no)?,
                "hot_frac" => hot_frac = parse_f64(value, line_no)?,
                _ => return Err(format!("line {line_no}: unknown key `{key}`")),
            }
        }
        spec.arrivals = match arrivals.as_str() {
            "poisson" => ArrivalSpec::Poisson,
            "mmpp" => ArrivalSpec::Mmpp {
                burst_mult,
                dwell_calm,
                dwell_burst,
            },
            other => return Err(format!("unknown arrivals `{other}` (poisson|mmpp)")),
        };
        spec.mix = match mix.as_str() {
            "uniform" => MixKind::Uniform,
            "zipf" => MixKind::Zipf { s: zipf_s },
            "fifo" => MixKind::FifoAdversarial,
            "lifo" => MixKind::LifoAdversarial,
            "sawtooth" => MixKind::Sawtooth {
                period: sawtooth_period,
            },
            "hotkey" => MixKind::HotKey { hot_frac },
            other => {
                return Err(format!(
                    "unknown mix `{other}` (uniform|zipf|fifo|lifo|sawtooth|hotkey)"
                ))
            }
        };
        spec.validate();
        Ok(spec)
    }
}

fn parse_u64(value: &str, line_no: usize) -> Result<u64, String> {
    value
        .replace('_', "")
        .parse()
        .map_err(|_| format!("line {line_no}: `{value}` is not an integer"))
}

fn parse_f64(value: &str, line_no: usize) -> Result<f64, String> {
    value
        .parse()
        .map_err(|_| format!("line {line_no}: `{value}` is not a number"))
}

fn parse_str(value: &str, line_no: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {line_no}: expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_round_trips() {
        let text = r#"
            # E19 heavy-traffic cell
            n = 16
            clients = 1_000_000
            rate = 8.5
            ticks = 256
            ticks_per_round = 4
            insert_ratio = 0.7
            n_prios = 32
            seed = 42
            arrivals = "mmpp"
            burst_mult = 4.0
            dwell_calm = 64.0
            dwell_burst = 16.0
            mix = "zipf"
            zipf_s = 1.2
        "#;
        let spec = OpenLoopSpec::from_toml(text).expect("parses");
        assert_eq!(spec.n, 16);
        assert_eq!(spec.clients, 1_000_000);
        assert_eq!(spec.rate, 8.5);
        assert_eq!(spec.ticks, 256);
        assert_eq!(spec.insert_ratio, 0.7);
        assert_eq!(
            spec.arrivals,
            ArrivalSpec::Mmpp {
                burst_mult: 4.0,
                dwell_calm: 64.0,
                dwell_burst: 16.0
            }
        );
        assert_eq!(spec.mix, MixKind::Zipf { s: 1.2 });
        assert_eq!(spec.seed, 42);
    }

    #[test]
    fn defaults_fill_unset_keys() {
        let spec = OpenLoopSpec::from_toml("seed = 9").expect("parses");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.n, OpenLoopSpec::base().n);
        assert_eq!(spec.arrivals, ArrivalSpec::Poisson);
        assert_eq!(spec.mix, MixKind::Uniform);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(OpenLoopSpec::from_toml("rtae = 3.0").is_err());
        assert!(OpenLoopSpec::from_toml("arrivals = poisson").is_err()); // unquoted
        assert!(OpenLoopSpec::from_toml("arrivals = \"bursty\"").is_err());
        assert!(OpenLoopSpec::from_toml("mix = \"zpif\"").is_err());
        assert!(OpenLoopSpec::from_toml("n 16").is_err());
    }

    #[test]
    fn every_mix_name_parses() {
        for (name, extra) in [
            ("uniform", ""),
            ("zipf", "zipf_s = 0.8"),
            ("fifo", ""),
            ("lifo", ""),
            ("sawtooth", "sawtooth_period = 8"),
            ("hotkey", "hot_frac = 0.5"),
        ] {
            let text = format!("mix = \"{name}\"\n{extra}");
            OpenLoopSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
