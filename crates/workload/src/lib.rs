//! # dpq-workload — open-loop heavy-traffic workload engine
//!
//! The experiments before this crate drove Skeap/Seap closed-loop: fixed
//! per-node scripts, one injection per node per round, uniform priorities.
//! Real deployments look nothing like that — traffic arrives when *users*
//! decide, not when the system is ready (open loop), intensities burst,
//! priorities skew, and millions of logical clients funnel through a few
//! dozen entry nodes. This crate makes that traffic a deterministic,
//! replayable artifact:
//!
//! * [`zipf`] — rejection-free Zipf sampling (Walker–Vose alias method);
//! * [`arrivals`] — Poisson and 2-state MMPP arrival processes on a
//!   fractional-tick time axis;
//! * [`mix`] — priority mixes: uniform, Zipf, FIFO/LIFO-adversarial,
//!   sawtooth, hot-key contention;
//! * [`spec`] — the workload description + its flat TOML form
//!   (`--workload <spec.toml>` on the experiment binary);
//! * [`schedule`] — the materialised injection schedule, a *pure function*
//!   of the spec with a canonical byte form (determinism pins live on it);
//! * [`drive`] — replay drivers for both schedulers, stamping each op's
//!   latency clock at its scheduled arrival tick.
//!
//! Everything is seeded through [`dpq_core::DetRng`] streams — no wall
//! clock, no OS randomness — so a spec names a workload the way a seed
//! names a run, byte-for-byte, across `--jobs` shards and machines.

#![warn(missing_docs)]

pub mod arrivals;
pub mod drive;
pub mod mix;
pub mod schedule;
pub mod spec;
pub mod zipf;

pub use arrivals::{exp_draw, Arrivals, Mmpp, MmppEvent, MmppState, Poisson};
pub use drive::{drive_async, drive_sync, DriveOutcome};
pub use mix::{Mix, MixKind};
pub use schedule::{Injection, Schedule, WorkOp};
pub use spec::{ArrivalSpec, OpenLoopSpec};
pub use zipf::{AliasTable, Zipf};
