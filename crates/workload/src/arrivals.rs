//! Arrival processes: when the next request reaches the cluster.
//!
//! Open-loop semantics — arrivals are a function of *time*, not of how fast
//! the system answers. Two processes:
//!
//! * **Poisson(λ)**: i.i.d. Exp(λ) interarrival gaps, the memoryless
//!   baseline of queueing theory.
//! * **MMPP**: a 2-state markov-modulated Poisson process alternating
//!   between a *calm* state (rate λ) and a *burst* state (rate λ·m), with
//!   exponentially distributed dwell times in each state. This is the
//!   standard bursty-traffic model: time-varying intensity with heavy
//!   short-range correlation, which a plain Poisson stream cannot produce.
//!
//! All time is in fractional *ticks*; the schedule generator floors
//! accumulated time onto the integer tick axis.

use dpq_core::DetRng;

/// One Exp(rate) draw via the inverse CDF. Uses `1 - u` so `u = 0` (which
/// `DetRng::unit` can produce) never feeds `ln(0)`.
#[inline]
pub fn exp_draw(rng: &mut DetRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    -(1.0 - rng.unit()).ln() / rate
}

/// Poisson process: i.i.d. exponential gaps.
#[derive(Debug, Clone)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// A Poisson stream with `rate` arrivals per tick.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Poisson { rate }
    }

    /// Gap to the next arrival, in fractional ticks.
    #[inline]
    pub fn next_gap(&self, rng: &mut DetRng) -> f64 {
        exp_draw(rng, self.rate)
    }
}

/// Which intensity state a [`Mmpp`] is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmppState {
    /// Baseline intensity.
    Calm,
    /// Elevated intensity (`rate × burst_mult`).
    Burst,
}

/// What one [`Mmpp::next_event`] step produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppEvent {
    /// Time since the previous event, fractional ticks.
    pub gap: f64,
    /// `true` → an arrival fired; `false` → the state switched.
    pub is_arrival: bool,
    /// The state the process was in *during* `gap` (before any switch).
    pub state: MmppState,
}

/// 2-state markov-modulated Poisson process.
///
/// Simulated by competing exponentials: in a state with arrival rate λ and
/// switch rate μ = 1/dwell, the next event is Exp(λ+μ) away and is an
/// arrival with probability λ/(λ+μ) — exactly the superposition of the two
/// independent exponential clocks, with no discretisation error.
#[derive(Debug, Clone)]
pub struct Mmpp {
    rate_calm: f64,
    rate_burst: f64,
    /// Switch rates (1/mean-dwell) out of each state.
    switch_calm: f64,
    switch_burst: f64,
    state: MmppState,
}

impl Mmpp {
    /// Calm-state rate `rate`, burst-state rate `rate × burst_mult`, mean
    /// dwell times `dwell_calm`/`dwell_burst` ticks. Starts calm.
    pub fn new(rate: f64, burst_mult: f64, dwell_calm: f64, dwell_burst: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst_mult >= 1.0, "burst multiplier must be >= 1");
        assert!(
            dwell_calm > 0.0 && dwell_burst > 0.0,
            "dwells must be positive"
        );
        Mmpp {
            rate_calm: rate,
            rate_burst: rate * burst_mult,
            switch_calm: 1.0 / dwell_calm,
            switch_burst: 1.0 / dwell_burst,
            state: MmppState::Calm,
        }
    }

    /// Current intensity state.
    pub fn state(&self) -> MmppState {
        self.state
    }

    /// Advance to the next event (arrival *or* state switch). Exposed at
    /// event granularity so the dwell-distribution test can reconstruct
    /// per-state residence intervals from the same stream the schedule
    /// generator consumes.
    pub fn next_event(&mut self, rng: &mut DetRng) -> MmppEvent {
        let (arr, switch) = match self.state {
            MmppState::Calm => (self.rate_calm, self.switch_calm),
            MmppState::Burst => (self.rate_burst, self.switch_burst),
        };
        let gap = exp_draw(rng, arr + switch);
        let is_arrival = rng.unit() < arr / (arr + switch);
        let state = self.state;
        if !is_arrival {
            self.state = match self.state {
                MmppState::Calm => MmppState::Burst,
                MmppState::Burst => MmppState::Calm,
            };
        }
        MmppEvent {
            gap,
            is_arrival,
            state,
        }
    }

    /// Gap to the next *arrival*, absorbing any state switches in between.
    pub fn next_gap(&mut self, rng: &mut DetRng) -> f64 {
        let mut total = 0.0;
        loop {
            let ev = self.next_event(rng);
            total += ev.gap;
            if ev.is_arrival {
                return total;
            }
        }
    }
}

/// A unified arrival stream: the schedule generator only needs "gap to the
/// next arrival".
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Memoryless stream.
    Poisson(Poisson),
    /// Bursty markov-modulated stream.
    Mmpp(Mmpp),
}

impl Arrivals {
    /// Gap to the next arrival, fractional ticks.
    pub fn next_gap(&mut self, rng: &mut DetRng) -> f64 {
        match self {
            Arrivals::Poisson(p) => p.next_gap(rng),
            Arrivals::Mmpp(m) => m.next_gap(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_draws_have_the_right_mean() {
        let mut rng = DetRng::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exp_draw(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn poisson_rate_is_honoured() {
        let p = Poisson::new(2.0);
        let mut rng = DetRng::new(2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let rate = n as f64 / total;
        assert!((rate - 2.0).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_visits_both_states() {
        let mut m = Mmpp::new(1.0, 8.0, 10.0, 5.0);
        let mut rng = DetRng::new(3);
        let mut calm = 0;
        let mut burst = 0;
        for _ in 0..10_000 {
            match m.next_event(&mut rng).state {
                MmppState::Calm => calm += 1,
                MmppState::Burst => burst += 1,
            }
        }
        assert!(calm > 100 && burst > 100, "calm {calm} burst {burst}");
    }

    #[test]
    fn mmpp_burst_state_arrives_faster() {
        let mut m = Mmpp::new(1.0, 16.0, 50.0, 50.0);
        let mut rng = DetRng::new(4);
        let mut sums = [0.0f64; 2];
        let mut counts = [0u64; 2];
        for _ in 0..200_000 {
            let ev = m.next_event(&mut rng);
            if ev.is_arrival {
                let i = (ev.state == MmppState::Burst) as usize;
                sums[i] += ev.gap;
                counts[i] += 1;
            }
        }
        let mean_calm = sums[0] / counts[0] as f64;
        let mean_burst = sums[1] / counts[1] as f64;
        assert!(
            mean_burst * 4.0 < mean_calm,
            "burst mean {mean_burst} not ≪ calm mean {mean_calm}"
        );
    }

    #[test]
    fn gaps_are_deterministic() {
        let mut a = Arrivals::Mmpp(Mmpp::new(2.0, 4.0, 8.0, 2.0));
        let mut b = Arrivals::Mmpp(Mmpp::new(2.0, 4.0, 8.0, 2.0));
        let mut ra = DetRng::new(9);
        let mut rb = DetRng::new(9);
        for _ in 0..1000 {
            assert_eq!(a.next_gap(&mut ra), b.next_gap(&mut rb));
        }
    }
}
