//! Injection schedules: the materialised, replayable form of a workload.
//!
//! [`Schedule::generate`] is a pure function of the spec — no scheduler
//! state, no wall clock — so the same spec produces byte-identical
//! schedules everywhere: across `--jobs` shards, across machines, across
//! sessions. `to_bytes`/`fingerprint` exist precisely so tests can pin
//! that claim.

use crate::spec::OpenLoopSpec;
use dpq_core::{hash_u64, DetRng, NodeId};

/// Stream-split tags for the independent randomness lanes of a schedule.
/// Keeping arrival gaps, client picks, op kinds, and priorities on separate
/// streams means changing e.g. the insert ratio cannot perturb the arrival
/// times.
const STREAM_ARRIVALS: u64 = 0;
const STREAM_CLIENTS: u64 = 1;
const STREAM_KIND: u64 = 2;
const STREAM_MIX: u64 = 3;

/// Hash domain for the stable client → entry-node map.
const DOMAIN_CLIENT_NODE: u64 = 0x77_6f_72_6b; // "work"

/// What one arrival asks the heap to do. Element identity is *not* part of
/// the schedule: nodes self-assign `ElemId`s at issue time, exactly as the
/// closed-loop drivers do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkOp {
    /// Insert at this priority; the payload carries the client id.
    Insert {
        /// Priority drawn from the spec's mix.
        prio: u64,
    },
    /// Remove the minimum.
    DeleteMin,
}

/// One scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Arrival time, integer simulated ticks.
    pub tick: u64,
    /// Entry node (stable hash of the client).
    pub node: NodeId,
    /// Logical client issuing the request.
    pub client: u64,
    /// The request.
    pub op: WorkOp,
}

/// A complete injection schedule, time-ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Horizon the schedule was generated for, ticks.
    pub ticks: u64,
    /// Cluster size arrivals were multiplexed over.
    pub n: usize,
    /// Time-ordered injections.
    pub injections: Vec<Injection>,
}

impl Schedule {
    /// Generate the schedule for a spec. Pure: same spec → same bytes.
    pub fn generate(spec: &OpenLoopSpec) -> Schedule {
        spec.validate();
        let root = DetRng::new(spec.seed);
        let mut rng_arr = root.split(STREAM_ARRIVALS);
        let mut rng_cli = root.split(STREAM_CLIENTS);
        let mut rng_kind = root.split(STREAM_KIND);
        let mut rng_mix = root.split(STREAM_MIX);
        let mut arrivals = spec.arrivals();
        let mut mix = spec.mix();
        let mut injections = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += arrivals.next_gap(&mut rng_arr);
            let tick = t as u64;
            if !(t.is_finite() && tick < spec.ticks) {
                break;
            }
            let client = rng_cli.below(spec.clients);
            let node = NodeId(hash_u64(DOMAIN_CLIENT_NODE, client) % spec.n as u64);
            let op = if rng_kind.chance(spec.insert_ratio) {
                WorkOp::Insert {
                    prio: mix.next_prio(&mut rng_mix),
                }
            } else {
                WorkOp::DeleteMin
            };
            injections.push(Injection {
                tick,
                node,
                client,
                op,
            });
        }
        Schedule {
            ticks: spec.ticks,
            n: spec.n,
            injections,
        }
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Canonical byte serialisation (little-endian field concat) — the
    /// unit of the byte-identity determinism pin.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.injections.len() * 33);
        out.extend_from_slice(&self.ticks.to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for inj in &self.injections {
            out.extend_from_slice(&inj.tick.to_le_bytes());
            out.extend_from_slice(&inj.node.0.to_le_bytes());
            out.extend_from_slice(&inj.client.to_le_bytes());
            match inj.op {
                WorkOp::Insert { prio } => {
                    out.push(1);
                    out.extend_from_slice(&prio.to_le_bytes());
                }
                WorkOp::DeleteMin => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
        }
        out
    }

    /// FNV-1a 64 digest of [`Self::to_bytes`] — a compact pin for golden
    /// tests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::MixKind;
    use crate::spec::ArrivalSpec;

    #[test]
    fn generation_is_pure() {
        let spec = OpenLoopSpec::base();
        let a = Schedule::generate(&spec);
        let b = Schedule::generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn arrival_count_tracks_rate_times_horizon() {
        let mut spec = OpenLoopSpec::base();
        spec.rate = 4.0;
        spec.ticks = 1000;
        let s = Schedule::generate(&spec);
        let expected = 4.0 * 1000.0;
        let err = (s.len() as f64 - expected).abs() / expected;
        assert!(err < 0.10, "count {} vs expected {expected}", s.len());
    }

    #[test]
    fn injections_are_time_ordered_and_in_horizon() {
        let mut spec = OpenLoopSpec::base();
        spec.arrivals = ArrivalSpec::Mmpp {
            burst_mult: 8.0,
            dwell_calm: 16.0,
            dwell_burst: 4.0,
        };
        let s = Schedule::generate(&spec);
        assert!(!s.is_empty());
        let mut prev = 0;
        for inj in &s.injections {
            assert!(inj.tick >= prev);
            assert!(inj.tick < spec.ticks);
            assert!(inj.node.0 < spec.n as u64);
            assert!(inj.client < spec.clients);
            prev = inj.tick;
        }
    }

    #[test]
    fn clients_map_to_stable_nodes() {
        let spec = OpenLoopSpec::base();
        let s = Schedule::generate(&spec);
        let mut seen: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
        for inj in &s.injections {
            let prev = seen.insert(inj.client, inj.node);
            if let Some(prev) = prev {
                assert_eq!(prev, inj.node, "client {} moved nodes", inj.client);
            }
        }
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = Schedule::generate(&OpenLoopSpec::base());
        let mut spec = OpenLoopSpec::base();
        spec.seed = 2;
        let b = Schedule::generate(&spec);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn insert_ratio_shapes_the_op_mix() {
        let mut spec = OpenLoopSpec::base();
        spec.rate = 16.0;
        spec.ticks = 1000;
        spec.insert_ratio = 0.8;
        let s = Schedule::generate(&spec);
        let inserts = s
            .injections
            .iter()
            .filter(|i| matches!(i.op, WorkOp::Insert { .. }))
            .count();
        let frac = inserts as f64 / s.len() as f64;
        assert!((0.77..0.83).contains(&frac), "insert fraction {frac}");
    }

    #[test]
    fn fifo_mix_schedules_only_priority_zero() {
        let mut spec = OpenLoopSpec::base();
        spec.mix = MixKind::FifoAdversarial;
        for inj in &Schedule::generate(&spec).injections {
            if let WorkOp::Insert { prio } = inj.op {
                assert_eq!(prio, 0);
            }
        }
    }
}
