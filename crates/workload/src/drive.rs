//! Schedule drivers: replay an injection schedule against a live scheduler.
//!
//! The drivers own the open-loop clock discipline and nothing else: *when*
//! each injection fires and at which simulated tick its latency clock
//! starts. *How* an injection turns into a protocol request stays with the
//! caller (an `issue` closure), because every protocol spells "insert"
//! differently — `SkeapNode::issue_insert`, `SeapNode::issue_insert`, a
//! baseline's direct push. The driver then stamps the op's arrival via
//! `note_injected_at`, so latency is measured from the *scheduled arrival
//! tick*, not from whichever round the injection happened to land in —
//! queueing delay inside a round is real latency under open-loop load.

use crate::schedule::{Injection, Schedule};
use dpq_core::OpId;
use dpq_sim::{Protocol, SyncScheduler, Telemetry, Tracer};

/// What a drive run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Requests injected (always the full schedule).
    pub injected: u64,
    /// Rounds consumed, injection horizon + drain.
    pub rounds: u64,
    /// Did the completion predicate hold before the drain budget ran out?
    pub drained: bool,
}

/// Replay `schedule` against a sync scheduler.
///
/// Rounds advance the simulated clock by `ticks_per_round` (taken from the
/// scheduler); every injection with arrival tick inside the upcoming round
/// is issued before that round steps, and its latency clock starts at its
/// *arrival* tick. After the horizon, the scheduler keeps stepping until
/// `done(nodes)` holds (protocols like Skeap never quiesce, so completion
/// is the caller's predicate), up to `drain_rounds` extra rounds.
///
/// The caller must have set `ticks_per_round` before any injection — pass
/// the value through [`SyncScheduler::set_ticks_per_round`].
pub fn drive_sync<P, T, M>(
    sched: &mut SyncScheduler<P, T, M>,
    schedule: &Schedule,
    drain_rounds: u64,
    mut issue: impl FnMut(&mut P, &Injection) -> OpId,
    done: impl Fn(&[P]) -> bool,
) -> DriveOutcome
where
    P: Protocol,
    T: Tracer,
    M: Telemetry,
    P::Msg: Clone,
{
    let tpr = sched.ticks_per_round();
    let mut next = 0usize;
    let started = sched.round();
    // Injection horizon: enough rounds to cover every scheduled tick.
    while next < schedule.injections.len() || sched.round() * tpr < schedule.ticks {
        // Everything arriving before the end of this round enters now.
        let window_end = (sched.round() + 1) * tpr;
        while next < schedule.injections.len() && schedule.injections[next].tick < window_end {
            let inj = schedule.injections[next];
            let op = issue(sched.node_mut(inj.node), &inj);
            sched.note_injected_at(op, inj.tick);
            next += 1;
        }
        sched.step_round();
    }
    // Drain: the offered load has ended; let in-flight work finish.
    let mut budget = drain_rounds;
    let mut drained = done(sched.nodes());
    while !drained && budget > 0 {
        sched.step_round();
        budget -= 1;
        drained = done(sched.nodes());
    }
    DriveOutcome {
        injected: schedule.injections.len() as u64,
        rounds: sched.round() - started,
        drained,
    }
}

/// Replay `schedule` against the adversarial async scheduler.
///
/// The async scheduler has no rounds, only scheduler *steps*; the driver
/// maps the tick axis onto it with a fixed exchange rate of
/// `steps_per_tick` steps per simulated tick (so node count and message
/// volume set the real density, exactly like `rate` does for rounds).
/// Latency is still stamped at the scheduled arrival tick — metrics from
/// sync and async runs of the same schedule share a time axis.
pub fn drive_async<P, T, D, M>(
    sched: &mut dpq_sim::AsyncScheduler<P, T, D, M>,
    schedule: &Schedule,
    steps_per_tick: u64,
    drain_steps: u64,
    mut issue: impl FnMut(&mut P, &Injection) -> OpId,
    done: impl Fn(&[P]) -> bool,
) -> DriveOutcome
where
    P: Protocol,
    T: Tracer,
    D: dpq_sim::DeliveryPolicy,
    M: Telemetry,
    P::Msg: Clone,
{
    assert!(steps_per_tick >= 1, "steps_per_tick must be >= 1");
    let started = sched.steps();
    let mut next = 0usize;
    while next < schedule.injections.len() {
        let now_tick = sched.steps() / steps_per_tick;
        while next < schedule.injections.len() && schedule.injections[next].tick <= now_tick {
            let inj = schedule.injections[next];
            let op = issue(sched.node_mut(inj.node), &inj);
            sched.note_injected_at(op, inj.tick);
            next += 1;
        }
        sched.step_once();
    }
    let mut budget = drain_steps;
    let mut drained = done(sched.nodes());
    while !drained && budget > 0 {
        sched.step_once();
        budget -= 1;
        drained = done(sched.nodes());
    }
    DriveOutcome {
        injected: schedule.injections.len() as u64,
        rounds: sched.steps() - started,
        drained,
    }
}
