//! dpq-net: the wire runtime — real sockets under the simulated protocols.
//!
//! Everything above the transport is the *same code* the simulator runs:
//! the `Protocol` nodes (`on_activate`/`on_message`) and the `Reliable`
//! exactly-once layer are driven unmodified. This crate supplies what the
//! simulator faked:
//!
//! * [`wire`]/[`codec`] — a hand-rolled, panic-free binary codec for every
//!   protocol message enum (LEB128 varints, one-byte tags);
//! * [`frame`] — length-prefixed framing with a versioned handshake, so two
//!   clusters on one host cannot cross-connect;
//! * [`transport`] — Unix-domain-socket and TCP listeners/connections
//!   behind one [`Addr`](transport::Addr) type;
//! * [`peers`] — per-peer writer threads with reconnect/backoff and bounded
//!   send queues (overflow is message loss, which `Reliable` absorbs);
//! * [`runtime`] — the single-threaded event loop: ticks, deliveries, and
//!   control requests, with an optional event-sourced [`wal`] for
//!   crash-recover;
//! * [`ctl`] — the `dpq-ctl` control plane (status, enqueue/dequeue, trace
//!   dump, Prometheus metrics pull, shutdown);
//! * [`app`] — the [`NetApp`](app::NetApp) glue binding Skeap, Seap, and
//!   KSelect nodes to the runtime;
//! * [`trace`] — JSONL op-record traces the wire-conformance harness feeds
//!   back through the simulator's witness-replay and conservation oracles.
//!
//! The binaries `dpq-node` (daemon) and `dpq-ctl` (client) are thin shells
//! over these modules.

#![warn(missing_docs)]

pub mod app;
pub mod backoff;
pub mod codec;
pub mod config;
pub mod ctl;
pub mod frame;
pub mod peers;
pub mod runtime;
pub mod trace;
pub mod transport;
pub mod wal;
pub mod wire;

pub use app::NetApp;
pub use backoff::Backoff;
pub use config::{cluster_fingerprint, gossip_fingerprint, NodeConfig};
pub use ctl::{CtlClient, CtlReq, CtlResp, StatusInfo};
pub use frame::{ProtoId, MAX_FRAME, WIRE_VERSION};
pub use runtime::{Event, NodeRuntime};
pub use transport::{Addr, Conn, Listener};
pub use wire::{from_bytes, to_bytes, Wire, WireError};
