//! Reconnect backoff with **decorrelated jitter** and a hard cap.
//!
//! Deterministic doubling (`10, 20, 40, … 500ms`) synchronises every dialer
//! that observed the same failure: when a node restarts, all of its peers'
//! writer threads wake on the same schedule and stampede the fresh listener
//! together. Decorrelated jitter breaks the lockstep — each delay is drawn
//! uniformly from `[base, min(cap, prev · 3)]`, so retries spread out while
//! still growing geometrically in expectation and never exceeding the cap.
//!
//! The first delay after a reset is exactly `base` (fail fast once), and a
//! successful connection resets the schedule.

use std::time::Duration;

/// A decorrelated-jitter backoff schedule. Deterministic given its seed, so
/// tests can pin the exact draw sequence while distinct dialers (seeded by
/// peer id) still decorrelate.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: Option<u64>,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base` and hard-capped at `cap`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base_ms = (base.as_millis() as u64).max(1);
        Backoff {
            base_ms,
            cap_ms: (cap.as_millis() as u64).max(base_ms),
            prev_ms: None,
            state: seed,
        }
    }

    /// Next xorshift64* draw — small, fast, and plenty for jitter.
    fn rand(&mut self) -> u64 {
        let mut x = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The next delay to sleep before re-dialing.
    pub fn next_delay(&mut self) -> Duration {
        let ms = match self.prev_ms {
            // Fail fast exactly once, then decorrelate.
            None => self.base_ms,
            Some(prev) => {
                let hi = prev.saturating_mul(3).min(self.cap_ms).max(self.base_ms);
                self.base_ms + self.rand() % (hi - self.base_ms + 1)
            }
        };
        self.prev_ms = Some(ms);
        Duration::from_millis(ms)
    }

    /// A connection succeeded: the next failure starts over from `base`.
    pub fn reset(&mut self) {
        self.prev_ms = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_millis(500);

    /// Every delay the schedule can ever produce sits inside `[base, cap]`,
    /// and the first one after (re)set is exactly `base`.
    #[test]
    fn envelope_holds_for_the_whole_schedule() {
        for seed in 0..32u64 {
            let mut b = Backoff::new(BASE, CAP, seed);
            assert_eq!(b.next_delay(), BASE, "first delay fails fast");
            for _ in 0..200 {
                let d = b.next_delay();
                assert!(d >= BASE, "delay {d:?} below base");
                assert!(d <= CAP, "delay {d:?} above cap");
            }
            b.reset();
            assert_eq!(b.next_delay(), BASE, "reset restarts at base");
        }
    }

    /// The schedule actually grows toward the cap: within a few retries the
    /// upper envelope `min(cap, prev·3)` admits cap-sized delays, and long
    /// runs do reach the top quartile.
    #[test]
    fn schedule_reaches_the_cap_region() {
        let mut b = Backoff::new(BASE, CAP, 7);
        let max = (0..200).map(|_| b.next_delay().as_millis()).max().unwrap();
        assert!(max > 375, "200 retries never exceeded {max}ms");
    }

    /// Two dialers with different seeds do not retry in lockstep — the whole
    /// point of the jitter.
    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = Backoff::new(BASE, CAP, 1);
        let mut b = Backoff::new(BASE, CAP, 2);
        let sa: Vec<Duration> = (0..20).map(|_| a.next_delay()).collect();
        let sb: Vec<Duration> = (0..20).map(|_| b.next_delay()).collect();
        assert_ne!(sa, sb);
        // And the same seed is reproducible, so tests can pin schedules.
        let mut a2 = Backoff::new(BASE, CAP, 1);
        let sa2: Vec<Duration> = (0..20).map(|_| a2.next_delay()).collect();
        assert_eq!(sa, sa2);
    }

    /// Expected growth: the mean of many schedules ramps up — retry k=8
    /// averages well above retry k=1 across seeds.
    #[test]
    fn delays_grow_geometrically_in_expectation() {
        let (mut early, mut late) = (0u128, 0u128);
        for seed in 0..64u64 {
            let mut b = Backoff::new(BASE, CAP, seed);
            let s: Vec<u128> = (0..9).map(|_| b.next_delay().as_millis()).collect();
            early += s[1];
            late += s[8];
        }
        assert!(late > early * 2, "late {late} vs early {early}");
    }

    /// Degenerate configuration (cap below base) clamps sanely.
    #[test]
    fn cap_below_base_degrades_to_constant() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_millis(10), 3);
        for _ in 0..10 {
            assert_eq!(b.next_delay(), Duration::from_millis(50));
        }
    }
}
