//! The control plane: what `dpq-ctl` (and the test harness) speaks to a
//! `dpq-node` daemon.
//!
//! Same framing and handshake as the data plane, under [`ProtoId::Ctl`];
//! one request frame, one response frame, repeat. The client half here is a
//! plain library so the conformance harness drives clusters without shelling
//! out to the `dpq-ctl` binary.

use std::io::{self, Write as _};
use std::time::{Duration, Instant};

use crate::frame::{
    read_frame, read_hello, write_frame, write_hello, Hello, ProtoId, WIRE_VERSION,
};
use crate::transport::{Addr, Conn};
use crate::wire::{from_bytes, put_bool, put_varint, to_bytes, Reader, Wire, WireError};
use dpq_core::Key;

/// A control request.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlReq {
    /// Node and workload progress.
    Status,
    /// Issue `Insert(prio, payload)` at this node.
    Enqueue {
        /// The element's priority.
        prio: u64,
        /// The element's payload.
        payload: u64,
    },
    /// Issue `DeleteMin()` at this node.
    Dequeue,
    /// Write the node's JSONL op-record trace (and residual elements) to
    /// its `--trace` path.
    Dump,
    /// The telemetry hub + per-peer wire counters, as Prometheus text.
    Metrics,
    /// Drain and exit cleanly.
    Shutdown,
}

impl Wire for CtlReq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtlReq::Status => out.push(0),
            CtlReq::Enqueue { prio, payload } => {
                out.push(1);
                put_varint(out, *prio);
                put_varint(out, *payload);
            }
            CtlReq::Dequeue => out.push(2),
            CtlReq::Dump => out.push(3),
            CtlReq::Metrics => out.push(4),
            CtlReq::Shutdown => out.push(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(CtlReq::Status),
            1 => Ok(CtlReq::Enqueue {
                prio: r.varint()?,
                payload: r.varint()?,
            }),
            2 => Ok(CtlReq::Dequeue),
            3 => Ok(CtlReq::Dump),
            4 => Ok(CtlReq::Metrics),
            5 => Ok(CtlReq::Shutdown),
            tag => Err(WireError::BadTag {
                what: "CtlReq",
                tag,
            }),
        }
    }
}

/// A node's progress snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusInfo {
    /// This node's id.
    pub node: u64,
    /// Protocol in force.
    pub proto: String,
    /// Requests issued at this node.
    pub issued: u64,
    /// Requests completed at this node.
    pub completed: u64,
    /// Have all issued requests completed?
    pub all_complete: bool,
    /// KSelect's announced result, once known.
    pub result: Option<Key>,
    /// Logical ticks elapsed (including WAL-replayed ones).
    pub ticks: u64,
    /// Reliable-layer retransmissions so far.
    pub retransmits: u64,
    /// Reliable-layer duplicate deliveries suppressed so far.
    pub dup_suppressed: u64,
    /// Payloads currently awaiting an ack.
    pub unacked: u64,
}

impl Wire for StatusInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.node);
        self.proto.encode(out);
        put_varint(out, self.issued);
        put_varint(out, self.completed);
        put_bool(out, self.all_complete);
        self.result.encode(out);
        put_varint(out, self.ticks);
        put_varint(out, self.retransmits);
        put_varint(out, self.dup_suppressed);
        put_varint(out, self.unacked);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StatusInfo {
            node: r.varint()?,
            proto: String::decode(r)?,
            issued: r.varint()?,
            completed: r.varint()?,
            all_complete: r.bool()?,
            result: Option::<Key>::decode(r)?,
            ticks: r.varint()?,
            retransmits: r.varint()?,
            dup_suppressed: r.varint()?,
            unacked: r.varint()?,
        })
    }
}

/// A control response.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlResp {
    /// Answer to [`CtlReq::Status`].
    Status(StatusInfo),
    /// An operation was issued, with its id `(node, seq)`.
    Issued {
        /// Issuing node.
        node: u64,
        /// The op's per-node sequence number.
        seq: u64,
    },
    /// Answer to [`CtlReq::Dump`]: how many op records were written.
    Dumped {
        /// Records written to the trace file.
        records: u64,
    },
    /// Answer to [`CtlReq::Metrics`]: Prometheus text exposition.
    Metrics(String),
    /// The request failed; the daemon stays up.
    Error(String),
    /// Acknowledges [`CtlReq::Shutdown`]; the daemon exits after sending.
    Bye,
}

impl Wire for CtlResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtlResp::Status(s) => {
                out.push(0);
                s.encode(out);
            }
            CtlResp::Issued { node, seq } => {
                out.push(1);
                put_varint(out, *node);
                put_varint(out, *seq);
            }
            CtlResp::Dumped { records } => {
                out.push(2);
                put_varint(out, *records);
            }
            CtlResp::Metrics(text) => {
                out.push(3);
                text.encode(out);
            }
            CtlResp::Error(why) => {
                out.push(4);
                why.encode(out);
            }
            CtlResp::Bye => out.push(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(CtlResp::Status(StatusInfo::decode(r)?)),
            1 => Ok(CtlResp::Issued {
                node: r.varint()?,
                seq: r.varint()?,
            }),
            2 => Ok(CtlResp::Dumped {
                records: r.varint()?,
            }),
            3 => Ok(CtlResp::Metrics(String::decode(r)?)),
            4 => Ok(CtlResp::Error(String::decode(r)?)),
            5 => Ok(CtlResp::Bye),
            tag => Err(WireError::BadTag {
                what: "CtlResp",
                tag,
            }),
        }
    }
}

/// Sender id a ctl client announces in its hello (not a cluster node).
pub const CTL_SENDER: u64 = u64::MAX;

/// A blocking control-plane client.
pub struct CtlClient {
    conn: Conn,
}

impl CtlClient {
    /// Connect and handshake.
    pub fn connect(addr: &Addr, cluster: u64) -> io::Result<CtlClient> {
        let mut conn = Conn::connect(addr)?;
        write_hello(
            &mut conn,
            &Hello {
                version: WIRE_VERSION,
                proto: ProtoId::Ctl,
                cluster,
                sender: CTL_SENDER,
            },
        )?;
        conn.flush()?;
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(CtlClient { conn })
    }

    /// Connect, retrying while the daemon is still coming up.
    pub fn connect_retry(addr: &Addr, cluster: u64, wait: Duration) -> io::Result<CtlClient> {
        let deadline = Instant::now() + wait;
        loop {
            match CtlClient::connect(addr, cluster) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// One request/response exchange.
    pub fn request(&mut self, req: &CtlReq) -> io::Result<CtlResp> {
        write_frame(&mut self.conn, &to_bytes(req))?;
        self.conn.flush()?;
        let frame = read_frame(&mut self.conn)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed"))?;
        from_bytes(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Accept ctl connections on `listener` and forward each request into the
/// runtime's event queue together with a reply channel. One thread per
/// connection; requests across connections serialize through the queue.
pub fn serve_ctl(
    listener: crate::transport::Listener,
    cluster: u64,
    events: std::sync::mpsc::Sender<crate::runtime::Event>,
) {
    loop {
        let Ok(conn) = listener.accept() else {
            return;
        };
        let events = events.clone();
        std::thread::spawn(move || ctl_conn(conn, cluster, events));
    }
}

fn ctl_conn(mut conn: Conn, cluster: u64, events: std::sync::mpsc::Sender<crate::runtime::Event>) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    if read_hello(&mut conn, ProtoId::Ctl, cluster).is_err() {
        return;
    }
    let _ = conn.set_read_timeout(None);
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(Some(f)) => f,
            _ => return,
        };
        let req: CtlReq = match from_bytes(&frame) {
            Ok(r) => r,
            Err(e) => {
                let resp = CtlResp::Error(format!("bad request: {e}"));
                if write_frame(&mut conn, &to_bytes(&resp)).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutdown = req == CtlReq::Shutdown;
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        if events
            .send(crate::runtime::Event::Ctl(req, reply_tx))
            .is_err()
        {
            return;
        }
        let resp = match reply_rx.recv_timeout(Duration::from_secs(30)) {
            Ok(r) => r,
            Err(_) => CtlResp::Error("runtime did not answer".into()),
        };
        if write_frame(&mut conn, &to_bytes(&resp)).is_err() || conn.flush().is_err() {
            return;
        }
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_messages_round_trip() {
        let reqs = [
            CtlReq::Status,
            CtlReq::Enqueue {
                prio: 3,
                payload: 99,
            },
            CtlReq::Dequeue,
            CtlReq::Dump,
            CtlReq::Metrics,
            CtlReq::Shutdown,
        ];
        for req in &reqs {
            assert_eq!(&from_bytes::<CtlReq>(&to_bytes(req)).unwrap(), req);
        }
        let resps = [
            CtlResp::Status(StatusInfo {
                node: 2,
                proto: "skeap".into(),
                issued: 10,
                completed: 7,
                all_complete: false,
                result: None,
                ticks: 12345,
                retransmits: 2,
                dup_suppressed: 1,
                unacked: 3,
            }),
            CtlResp::Issued { node: 2, seq: 5 },
            CtlResp::Dumped { records: 10 },
            CtlResp::Metrics("dpq_x 1\n".into()),
            CtlResp::Error("nope".into()),
            CtlResp::Bye,
        ];
        for resp in &resps {
            assert_eq!(&from_bytes::<CtlResp>(&to_bytes(resp)).unwrap(), resp);
        }
    }
}
