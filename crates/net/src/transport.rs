//! Transport abstraction: one address/listener/stream type over both Unix
//! domain sockets and TCP loopback, `std` only.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A transport address: `uds:/path/to.sock` or `tcp:host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A Unix domain socket path.
    Uds(PathBuf),
    /// A TCP host:port.
    Tcp(String),
}

impl Addr {
    /// Parse the CLI form: `uds:<path>` or `tcp:<host>:<port>`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            if path.is_empty() {
                return Err("empty uds path".into());
            }
            Ok(Addr::Uds(PathBuf::from(path)))
        } else if let Some(hp) = s.strip_prefix("tcp:") {
            if !hp.contains(':') {
                return Err(format!("tcp address {hp:?} needs host:port"));
            }
            Ok(Addr::Tcp(hp.to_string()))
        } else {
            Err(format!("address {s:?} must start with uds: or tcp:"))
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Uds(p) => write!(f, "uds:{}", p.display()),
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
        }
    }
}

/// A bound listener on either transport.
pub enum Listener {
    /// Unix domain socket listener.
    Uds(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `addr`. A stale UDS path from a previous (crashed) process is
    /// removed first — the daemon owns its socket path.
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?))
            }
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Uds(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }
}

/// A connected stream on either transport.
pub enum Conn {
    /// Unix domain socket stream.
    Uds(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Connect to `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }

    /// Clone the underlying descriptor (independent read/write halves).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Uds(s) => Ok(Conn::Uds(s.try_clone()?)),
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
        }
    }

    /// Bound the blocking time of reads (None = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Shut down both halves, unblocking any reader.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_and_display() {
        assert_eq!(
            Addr::parse("uds:/tmp/x.sock").unwrap(),
            Addr::Uds(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:9000").unwrap(),
            Addr::Tcp("127.0.0.1:9000".into())
        );
        assert!(Addr::parse("udp:1.2.3.4:5").is_err());
        assert!(Addr::parse("uds:").is_err());
        assert!(Addr::parse("tcp:9000").is_err());
        assert_eq!(Addr::parse("uds:/a").unwrap().to_string(), "uds:/a");
    }
}
