//! `dpq-node` — one priority-queue node as an OS process.
//!
//! ```text
//! dpq-node --proto skeap --n 5 --id 2 --seed 42 --n-prios 4 \
//!          --listen uds:/tmp/n2.sock --ctl uds:/tmp/n2.ctl \
//!          --peer 0=uds:/tmp/n0.sock --peer 1=uds:/tmp/n1.sock ... \
//!          [--rto 64] [--tick-ms 2] [--wal n2.wal] [--trace n2.jsonl]
//! ```
//!
//! The process builds its node deterministically from `(proto, n, seed, …)`,
//! connects to its peers, and serves `dpq-ctl` requests until told to shut
//! down. See `crates/net` for the runtime itself.

use dpq_net::runtime::NodeRuntime;
use dpq_net::{NodeConfig, ProtoId};
use kselect::KSelectNode;
use seap::SeapNode;
use skeap::SkeapNode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match NodeConfig::parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("dpq-node: {e}");
            std::process::exit(2);
        }
    };
    let result = match cfg.proto {
        ProtoId::Skeap => NodeRuntime::<SkeapNode>::start(cfg).and_then(NodeRuntime::run),
        ProtoId::Seap => NodeRuntime::<SeapNode>::start(cfg).and_then(NodeRuntime::run),
        ProtoId::KSelect => NodeRuntime::<KSelectNode>::start(cfg).and_then(NodeRuntime::run),
        ProtoId::Ctl => {
            eprintln!("dpq-node: 'ctl' is not a runnable protocol");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("dpq-node: {e}");
        std::process::exit(1);
    }
}
