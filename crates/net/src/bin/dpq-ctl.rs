//! `dpq-ctl` — control-plane client for a running `dpq-node`.
//!
//! ```text
//! dpq-ctl --ctl uds:/tmp/n0.ctl --proto skeap --n 5 --seed 42 <command>
//!
//! commands:
//!   status                    print the node's progress snapshot
//!   enqueue <prio> <payload>  issue Insert(prio, payload)
//!   dequeue                   issue DeleteMin()
//!   wait [secs]               poll until all issued ops complete (default 30s)
//!   dump                      write the node's JSONL trace to its --trace path
//!   metrics                   print the node's Prometheus text exposition
//!   shutdown                  ask the daemon to exit cleanly
//! ```
//!
//! `--proto/--n/--seed` must match the daemon's flags (plus `--gossip` when
//! the daemon runs the membership sidecar): they form the cluster
//! fingerprint checked in the handshake, so a client cannot accidentally
//! drive a different deployment on the same host.

use std::time::{Duration, Instant};

use dpq_net::{cluster_fingerprint, gossip_fingerprint, Addr, CtlClient, CtlReq, CtlResp, ProtoId};

fn fail(msg: &str) -> ! {
    eprintln!("dpq-ctl: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctl = None;
    let mut proto = None;
    let mut n = None;
    let mut seed = 0u64;
    let mut gossip = false;
    let mut rest = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("flag {arg} needs a value")))
        };
        match arg.as_str() {
            "--ctl" => ctl = Some(Addr::parse(val()).unwrap_or_else(|e| fail(&e))),
            "--proto" => proto = Some(ProtoId::parse(val()).unwrap_or_else(|e| fail(&e))),
            "--n" => {
                n = Some(
                    val()
                        .parse::<usize>()
                        .unwrap_or_else(|e| fail(&e.to_string())),
                )
            }
            "--seed" => seed = val().parse().unwrap_or_else(|e| fail(&format!("{e}"))),
            "--gossip" => gossip = true,
            _ => rest.push(arg.clone()),
        }
    }
    let ctl = ctl.unwrap_or_else(|| fail("--ctl is required"));
    let proto = proto.unwrap_or_else(|| fail("--proto is required"));
    let n = n.unwrap_or_else(|| fail("--n is required"));
    let mut fingerprint = cluster_fingerprint(proto, n, seed);
    if gossip {
        fingerprint = gossip_fingerprint(fingerprint);
    }

    let mut client = CtlClient::connect_retry(&ctl, fingerprint, Duration::from_secs(5))
        .unwrap_or_else(|e| fail(&format!("connecting to {ctl}: {e}")));
    let mut send = |req: &CtlReq| {
        client
            .request(req)
            .unwrap_or_else(|e| fail(&format!("request failed: {e}")))
    };

    let cmd = rest.first().map(String::as_str).unwrap_or("status");
    let resp = match cmd {
        "status" => send(&CtlReq::Status),
        "enqueue" => {
            if rest.len() != 3 {
                fail("usage: enqueue <prio> <payload>");
            }
            let prio = rest[1].parse().unwrap_or_else(|e| fail(&format!("{e}")));
            let payload = rest[2].parse().unwrap_or_else(|e| fail(&format!("{e}")));
            send(&CtlReq::Enqueue { prio, payload })
        }
        "dequeue" => send(&CtlReq::Dequeue),
        "wait" => {
            let secs: u64 = rest
                .get(1)
                .map(|s| s.parse().unwrap_or_else(|e| fail(&format!("{e}"))))
                .unwrap_or(30);
            let deadline = Instant::now() + Duration::from_secs(secs);
            loop {
                let resp = send(&CtlReq::Status);
                match &resp {
                    CtlResp::Status(s) if s.all_complete => break resp,
                    CtlResp::Status(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    CtlResp::Status(_) => fail(&format!("not complete after {secs}s")),
                    _ => break resp,
                }
            }
        }
        "dump" => send(&CtlReq::Dump),
        "metrics" => send(&CtlReq::Metrics),
        "shutdown" => send(&CtlReq::Shutdown),
        other => fail(&format!("unknown command {other:?}")),
    };

    match resp {
        CtlResp::Status(s) => {
            println!(
                "node {} proto {} issued {} completed {} all_complete {} \
                 result {} ticks {} retransmits {} dup_suppressed {} unacked {}",
                s.node,
                s.proto,
                s.issued,
                s.completed,
                s.all_complete,
                s.result
                    .map_or("-".to_string(), |k| format!("{}:{}", k.prio.0, k.elem.0)),
                s.ticks,
                s.retransmits,
                s.dup_suppressed,
                s.unacked
            );
        }
        CtlResp::Issued { node, seq } => println!("issued {node}:{seq}"),
        CtlResp::Dumped { records } => println!("dumped {records} records"),
        CtlResp::Metrics(text) => print!("{text}"),
        CtlResp::Bye => println!("bye"),
        CtlResp::Error(why) => {
            eprintln!("dpq-ctl: daemon error: {why}");
            std::process::exit(1);
        }
    }
}
