//! Length-prefixed framing and the versioned connection handshake.
//!
//! Every connection starts with a [`Hello`] frame and then carries opaque
//! payload frames: a little-endian `u32` length followed by that many bytes.
//! Frames above [`MAX_FRAME`] are rejected on both sides — the reader
//! *before* allocating — so a corrupt or hostile length prefix cannot balloon
//! memory. The handshake pins four things: the magic, the wire-format
//! version, the protocol being spoken (a Skeap node must not accept Seap
//! frames), and a cluster fingerprint derived from the deployment parameters
//! (`n`, `seed`, …) so two clusters on one host cannot cross-connect.

use std::io::{self, Read, Write};

use crate::wire::{from_bytes, put_varint, to_bytes, Reader, Wire, WireError};

/// First bytes of every connection.
pub const MAGIC: [u8; 4] = *b"DPQW";

/// Wire-format version. Bump on any codec or framing change.
pub const WIRE_VERSION: u64 = 1;

/// Hard ceiling on a frame's payload size (1 MiB). Protocol messages are
/// O(log n) bits; even a full Skeap batch over a large cluster stays far
/// below this.
pub const MAX_FRAME: usize = 1 << 20;

/// Which protocol a connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoId {
    /// Skeap: constant priority universe, batch cycles.
    Skeap,
    /// Seap: arbitrary priorities, phase machine.
    Seap,
    /// KSelect: one-shot k-selection.
    KSelect,
    /// The control plane (dpq-ctl ↔ dpq-node).
    Ctl,
}

impl ProtoId {
    /// Parse a protocol name as it appears on the CLI.
    pub fn parse(s: &str) -> Result<ProtoId, String> {
        match s {
            "skeap" => Ok(ProtoId::Skeap),
            "seap" => Ok(ProtoId::Seap),
            "kselect" => Ok(ProtoId::KSelect),
            other => Err(format!(
                "unknown protocol {other:?} (expected skeap, seap, or kselect)"
            )),
        }
    }

    /// The CLI / display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoId::Skeap => "skeap",
            ProtoId::Seap => "seap",
            ProtoId::KSelect => "kselect",
            ProtoId::Ctl => "ctl",
        }
    }
}

impl Wire for ProtoId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ProtoId::Skeap => 0,
            ProtoId::Seap => 1,
            ProtoId::KSelect => 2,
            ProtoId::Ctl => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ProtoId::Skeap),
            1 => Ok(ProtoId::Seap),
            2 => Ok(ProtoId::KSelect),
            3 => Ok(ProtoId::Ctl),
            tag => Err(WireError::BadTag {
                what: "ProtoId",
                tag,
            }),
        }
    }
}

/// The handshake frame opening every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Wire-format version ([`WIRE_VERSION`]).
    pub version: u64,
    /// Protocol this connection will carry.
    pub proto: ProtoId,
    /// Fingerprint of the deployment parameters (see
    /// [`cluster_fingerprint`](crate::config::cluster_fingerprint)).
    pub cluster: u64,
    /// The connecting node (or `u64::MAX` for a ctl client).
    pub sender: u64,
}

impl Wire for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        put_varint(out, self.version);
        self.proto.encode(out);
        put_varint(out, self.cluster);
        put_varint(out, self.sender);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != MAGIC {
            return Err(WireError::Frame(format!("bad magic {magic:02x?}")));
        }
        Ok(Hello {
            version: r.varint()?,
            proto: ProtoId::decode(r)?,
            cluster: r.varint()?,
            sender: r.varint()?,
        })
    }
}

impl Hello {
    /// Validate an inbound hello against what this endpoint expects.
    pub fn check(&self, proto: ProtoId, cluster: u64) -> Result<(), WireError> {
        if self.version != WIRE_VERSION {
            return Err(WireError::Frame(format!(
                "wire version {} (expected {WIRE_VERSION})",
                self.version
            )));
        }
        if self.proto != proto {
            return Err(WireError::Frame(format!(
                "protocol {} (expected {})",
                self.proto.name(),
                proto.name()
            )));
        }
        if self.cluster != cluster {
            return Err(WireError::Frame(format!(
                "cluster fingerprint {:#x} (expected {cluster:#x})",
                self.cluster
            )));
        }
        Ok(())
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF (the
/// peer closed between frames); EOF mid-frame and oversized lengths are
/// errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write a hello as the connection's first frame.
pub fn write_hello(w: &mut impl Write, hello: &Hello) -> io::Result<()> {
    write_frame(w, &to_bytes(hello))
}

/// Read and validate the connection-opening hello.
pub fn read_hello(r: &mut impl Read, proto: ProtoId, cluster: u64) -> io::Result<Hello> {
    let frame = read_frame(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before the handshake"))?;
    let hello: Hello = from_bytes(&frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    hello
        .check(proto, cluster)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(hello)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn handshake_validates_version_proto_and_cluster() {
        let hello = Hello {
            version: WIRE_VERSION,
            proto: ProtoId::Skeap,
            cluster: 42,
            sender: 3,
        };
        assert!(hello.check(ProtoId::Skeap, 42).is_ok());
        assert!(hello.check(ProtoId::Seap, 42).is_err(), "wrong protocol");
        assert!(hello.check(ProtoId::Skeap, 43).is_err(), "wrong cluster");
        let stale = Hello {
            version: WIRE_VERSION + 1,
            ..hello
        };
        assert!(stale.check(ProtoId::Skeap, 42).is_err(), "wrong version");

        let mut buf = Vec::new();
        write_hello(&mut buf, &hello).unwrap();
        let got = read_hello(&mut Cursor::new(buf), ProtoId::Skeap, 42).unwrap();
        assert_eq!(got, hello);
    }

    #[test]
    fn garbage_handshake_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"NOPE****").unwrap();
        assert!(read_hello(&mut Cursor::new(buf), ProtoId::Skeap, 0).is_err());
    }
}
