//! [`Wire`] implementations for every type that crosses a socket.
//!
//! One impl per aggregate, in dependency order: core ids and elements, the
//! interval algebra, overlay routing envelopes, DHT requests, then the three
//! protocol alphabets (`SkeapMsg`, `SeapMsg`, `KMsg`) and the reliable
//! transport's framing. Enum variants carry an explicit one-byte tag in
//! declaration order; unknown tags decode to [`WireError::BadTag`], never a
//! panic — the property `tests/codec_props.rs` fuzzes.

use crate::wire::{put_bool, put_f64, put_varint, Reader, Wire, WireError};
use dpq_agg::{Interval, Segments};
use dpq_core::{ElemId, Element, Key, NodeId, OpId, OpKind, OpRecord, OpReturn, Priority};
use dpq_dht::{DhtReq, DhtResp};
use dpq_gossip::{DigestEntry, GossipMsg, NodeDelta};
use dpq_overlay::routing::{HopMsg, RouteMsg};
use dpq_overlay::{VirtId, VirtKind};
use dpq_sim::ReliableMsg;
use kselect::msgs::{Compare, Place, Split};
use kselect::{Cmd, KMsg, Rsp};
use seap::SeapMsg;
use skeap::{Batch, BatchEntry, EntryAssign, SkeapMsg};

impl Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.varint()?))
    }
}

impl Wire for ElemId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ElemId(r.varint()?))
    }
}

impl Wire for Priority {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Priority(r.varint()?))
    }
}

impl Wire for Key {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prio.encode(out);
        self.elem.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Key {
            prio: Priority::decode(r)?,
            elem: ElemId::decode(r)?,
        })
    }
}

impl Wire for Element {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.prio.encode(out);
        put_varint(out, self.payload);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Element {
            id: ElemId::decode(r)?,
            prio: Priority::decode(r)?,
            payload: r.varint()?,
        })
    }
}

impl Wire for OpId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        put_varint(out, self.seq);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OpId {
            node: NodeId::decode(r)?,
            seq: r.varint()?,
        })
    }
}

impl Wire for OpKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OpKind::Insert(e) => {
                out.push(0);
                e.encode(out);
            }
            OpKind::DeleteMin => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(OpKind::Insert(Element::decode(r)?)),
            1 => Ok(OpKind::DeleteMin),
            tag => Err(WireError::BadTag {
                what: "OpKind",
                tag,
            }),
        }
    }
}

impl Wire for OpReturn {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OpReturn::Inserted => out.push(0),
            OpReturn::Removed(e) => {
                out.push(1);
                e.encode(out);
            }
            OpReturn::Bottom => out.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(OpReturn::Inserted),
            1 => Ok(OpReturn::Removed(Element::decode(r)?)),
            2 => Ok(OpReturn::Bottom),
            tag => Err(WireError::BadTag {
                what: "OpReturn",
                tag,
            }),
        }
    }
}

impl Wire for OpRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.kind.encode(out);
        self.ret.encode(out);
        self.witness.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OpRecord {
            id: OpId::decode(r)?,
            kind: OpKind::decode(r)?,
            ret: Option::<OpReturn>::decode(r)?,
            witness: Option::<u64>::decode(r)?,
        })
    }
}

impl Wire for Interval {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.lo);
        put_varint(out, self.hi);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Interval {
            lo: r.varint()?,
            hi: r.varint()?,
        })
    }
}

impl Wire for Segments {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parts.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Segments {
            parts: dpq_arena::SmallVec::decode(r)?,
        })
    }
}

impl Wire for VirtKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(VirtKind::Left),
            1 => Ok(VirtKind::Middle),
            2 => Ok(VirtKind::Right),
            tag => Err(WireError::BadTag {
                what: "VirtKind",
                tag,
            }),
        }
    }
}

impl Wire for VirtId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.real.encode(out);
        self.kind.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VirtId {
            real: NodeId::decode(r)?,
            kind: VirtKind::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for RouteMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.target);
        self.at.encode(out);
        put_varint(out, self.steps_done as u64);
        put_bool(out, self.walk_back);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let target = r.f64()?;
        let at = VirtId::decode(r)?;
        let steps = r.varint()?;
        let steps_done = u32::try_from(steps)
            .map_err(|_| WireError::Frame("RouteMsg.steps_done exceeds u32".into()))?;
        Ok(RouteMsg {
            target,
            at,
            steps_done,
            walk_back: r.bool()?,
            payload: M::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for HopMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        put_bool(out, self.walk_back);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HopMsg {
            at: VirtId::decode(r)?,
            walk_back: r.bool()?,
            payload: M::decode(r)?,
        })
    }
}

impl Wire for DhtReq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DhtReq::Put {
                logical,
                elem,
                reply_to,
                id,
            } => {
                out.push(0);
                put_varint(out, *logical);
                elem.encode(out);
                reply_to.encode(out);
                put_varint(out, *id);
            }
            DhtReq::Get {
                logical,
                reply_to,
                id,
            } => {
                out.push(1);
                put_varint(out, *logical);
                reply_to.encode(out);
                put_varint(out, *id);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DhtReq::Put {
                logical: r.varint()?,
                elem: Element::decode(r)?,
                reply_to: NodeId::decode(r)?,
                id: r.varint()?,
            }),
            1 => Ok(DhtReq::Get {
                logical: r.varint()?,
                reply_to: NodeId::decode(r)?,
                id: r.varint()?,
            }),
            tag => Err(WireError::BadTag {
                what: "DhtReq",
                tag,
            }),
        }
    }
}

impl Wire for DhtResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DhtResp::PutAck { id } => {
                out.push(0);
                put_varint(out, *id);
            }
            DhtResp::GetOk { id, elem } => {
                out.push(1);
                put_varint(out, *id);
                elem.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DhtResp::PutAck { id: r.varint()? }),
            1 => Ok(DhtResp::GetOk {
                id: r.varint()?,
                elem: Element::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "DhtResp",
                tag,
            }),
        }
    }
}

impl Wire for BatchEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ins.encode(out);
        put_varint(out, self.del);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BatchEntry {
            ins: dpq_arena::SmallVec::decode(r)?,
            del: r.varint()?,
        })
    }
}

impl Wire for Batch {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.n_prios as u64);
        self.entries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n_prios = usize::try_from(r.varint()?)
            .map_err(|_| WireError::Frame("Batch.n_prios exceeds usize".into()))?;
        Ok(Batch {
            n_prios,
            entries: Vec::<BatchEntry>::decode(r)?,
        })
    }
}

impl Wire for EntryAssign {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ins.encode(out);
        self.ins_seq.encode(out);
        self.del.encode(out);
        put_varint(out, self.bottom);
        self.del_seq.encode(out);
        put_bool(out, self.lifo);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EntryAssign {
            ins: dpq_arena::SmallVec::decode(r)?,
            ins_seq: Interval::decode(r)?,
            del: Segments::decode(r)?,
            bottom: r.varint()?,
            del_seq: Interval::decode(r)?,
            lifo: r.bool()?,
        })
    }
}

impl Wire for SkeapMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SkeapMsg::BatchUp { cycle, batch } => {
                out.push(0);
                put_varint(out, *cycle);
                batch.encode(out);
            }
            SkeapMsg::Down { cycle, assigns } => {
                out.push(1);
                put_varint(out, *cycle);
                assigns.encode(out);
            }
            SkeapMsg::Dht(m) => {
                out.push(2);
                m.encode(out);
            }
            SkeapMsg::Resp(m) => {
                out.push(3);
                m.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SkeapMsg::BatchUp {
                cycle: r.varint()?,
                batch: Batch::decode(r)?,
            }),
            1 => Ok(SkeapMsg::Down {
                cycle: r.varint()?,
                assigns: Vec::<EntryAssign>::decode(r)?,
            }),
            2 => Ok(SkeapMsg::Dht(RouteMsg::<DhtReq>::decode(r)?)),
            3 => Ok(SkeapMsg::Resp(DhtResp::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "SkeapMsg",
                tag,
            }),
        }
    }
}

impl Wire for Cmd {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Cmd::P1Bounds { k, n } => {
                out.push(0);
                put_varint(out, *k);
                put_varint(out, *n);
            }
            Cmd::P1Prune { pmin, pmax } => {
                out.push(1);
                pmin.encode(out);
                pmax.encode(out);
            }
            Cmd::Sample { epoch, prune, prob } => {
                out.push(2);
                put_varint(out, *epoch);
                prune.encode(out);
                put_f64(out, *prob);
            }
            Cmd::Positions {
                epoch,
                lo,
                hi,
                first,
                last,
                n_prime,
            } => {
                out.push(3);
                put_varint(out, *epoch);
                put_varint(out, *lo);
                put_varint(out, *hi);
                put_varint(out, *first);
                put_varint(out, *last);
                put_varint(out, *n_prime);
            }
            Cmd::WindowCount { cl, cr } => {
                out.push(4);
                cl.encode(out);
                cr.encode(out);
            }
            Cmd::Announce { result } => {
                out.push(5);
                result.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Cmd::P1Bounds {
                k: r.varint()?,
                n: r.varint()?,
            }),
            1 => Ok(Cmd::P1Prune {
                pmin: Key::decode(r)?,
                pmax: Key::decode(r)?,
            }),
            2 => Ok(Cmd::Sample {
                epoch: r.varint()?,
                prune: Option::<(Key, Key)>::decode(r)?,
                prob: r.f64()?,
            }),
            3 => Ok(Cmd::Positions {
                epoch: r.varint()?,
                lo: r.varint()?,
                hi: r.varint()?,
                first: r.varint()?,
                last: r.varint()?,
                n_prime: r.varint()?,
            }),
            4 => Ok(Cmd::WindowCount {
                cl: Key::decode(r)?,
                cr: Key::decode(r)?,
            }),
            5 => Ok(Cmd::Announce {
                result: Key::decode(r)?,
            }),
            tag => Err(WireError::BadTag { what: "Cmd", tag }),
        }
    }
}

impl Wire for Rsp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Rsp::MinMax { pmin, pmax } => {
                out.push(0);
                pmin.encode(out);
                pmax.encode(out);
            }
            Rsp::Counts { below, above } => {
                out.push(1);
                put_varint(out, *below);
                put_varint(out, *above);
            }
            Rsp::SampleCount { count } => {
                out.push(2);
                put_varint(out, *count);
            }
            Rsp::Hits { lo, hi } => {
                out.push(3);
                lo.encode(out);
                hi.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Rsp::MinMax {
                pmin: Key::decode(r)?,
                pmax: Key::decode(r)?,
            }),
            1 => Ok(Rsp::Counts {
                below: r.varint()?,
                above: r.varint()?,
            }),
            2 => Ok(Rsp::SampleCount { count: r.varint()? }),
            3 => Ok(Rsp::Hits {
                lo: Option::<Key>::decode(r)?,
                hi: Option::<Key>::decode(r)?,
            }),
            tag => Err(WireError::BadTag { what: "Rsp", tag }),
        }
    }
}

impl Wire for Place {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.epoch);
        put_varint(out, self.pos);
        self.key.encode(out);
        self.origin.encode(out);
        put_varint(out, self.n_prime);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Place {
            epoch: r.varint()?,
            pos: r.varint()?,
            key: Key::decode(r)?,
            origin: NodeId::decode(r)?,
            n_prime: r.varint()?,
        })
    }
}

impl Wire for Split {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.epoch);
        put_varint(out, self.cand);
        self.key.encode(out);
        put_varint(out, self.a);
        put_varint(out, self.b);
        self.parent.encode(out);
        put_varint(out, self.parent_copy);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Split {
            epoch: r.varint()?,
            cand: r.varint()?,
            key: Key::decode(r)?,
            a: r.varint()?,
            b: r.varint()?,
            parent: NodeId::decode(r)?,
            parent_copy: r.varint()?,
        })
    }
}

impl Wire for Compare {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.epoch);
        put_varint(out, self.cand);
        put_varint(out, self.copy);
        self.key.encode(out);
        self.back.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Compare {
            epoch: r.varint()?,
            cand: r.varint()?,
            copy: r.varint()?,
            key: Key::decode(r)?,
            back: NodeId::decode(r)?,
        })
    }
}

impl Wire for KMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KMsg::Down(c) => {
                out.push(0);
                c.encode(out);
            }
            KMsg::Up(rsp) => {
                out.push(1);
                rsp.encode(out);
            }
            KMsg::Place(m) => {
                out.push(2);
                m.encode(out);
            }
            KMsg::Split(m) => {
                out.push(3);
                m.encode(out);
            }
            KMsg::Compare(m) => {
                out.push(4);
                m.encode(out);
            }
            KMsg::CmpResult {
                epoch,
                cand,
                copy,
                smaller,
                larger,
            } => {
                out.push(5);
                put_varint(out, *epoch);
                put_varint(out, *cand);
                put_varint(out, *copy);
                put_varint(out, *smaller);
                put_varint(out, *larger);
            }
            KMsg::CopyAgg {
                epoch,
                cand,
                parent_copy,
                smaller,
                larger,
            } => {
                out.push(6);
                put_varint(out, *epoch);
                put_varint(out, *cand);
                put_varint(out, *parent_copy);
                put_varint(out, *smaller);
                put_varint(out, *larger);
            }
            KMsg::Order { epoch, key, order } => {
                out.push(7);
                put_varint(out, *epoch);
                key.encode(out);
                put_varint(out, *order);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(KMsg::Down(Cmd::decode(r)?)),
            1 => Ok(KMsg::Up(Rsp::decode(r)?)),
            2 => Ok(KMsg::Place(RouteMsg::<Place>::decode(r)?)),
            3 => Ok(KMsg::Split(HopMsg::<Split>::decode(r)?)),
            4 => Ok(KMsg::Compare(RouteMsg::<Compare>::decode(r)?)),
            5 => Ok(KMsg::CmpResult {
                epoch: r.varint()?,
                cand: r.varint()?,
                copy: r.varint()?,
                smaller: r.varint()?,
                larger: r.varint()?,
            }),
            6 => Ok(KMsg::CopyAgg {
                epoch: r.varint()?,
                cand: r.varint()?,
                parent_copy: r.varint()?,
                smaller: r.varint()?,
                larger: r.varint()?,
            }),
            7 => Ok(KMsg::Order {
                epoch: r.varint()?,
                key: Key::decode(r)?,
                order: r.varint()?,
            }),
            tag => Err(WireError::BadTag { what: "KMsg", tag }),
        }
    }
}

impl Wire for SeapMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SeapMsg::Begin { phase } => {
                out.push(0);
                put_varint(out, *phase);
            }
            SeapMsg::CountUp { phase, count } => {
                out.push(1);
                put_varint(out, *phase);
                put_varint(out, *count);
            }
            SeapMsg::StartInserts { phase, wit } => {
                out.push(2);
                put_varint(out, *phase);
                wit.encode(out);
            }
            SeapMsg::CountBelow { phase, key_k } => {
                out.push(3);
                put_varint(out, *phase);
                key_k.encode(out);
            }
            SeapMsg::StoreCountUp { phase, count } => {
                out.push(4);
                put_varint(out, *phase);
                put_varint(out, *count);
            }
            SeapMsg::Assign {
                phase,
                key_k,
                store,
                del,
                wit,
            } => {
                out.push(5);
                put_varint(out, *phase);
                key_k.encode(out);
                store.encode(out);
                del.encode(out);
                wit.encode(out);
            }
            SeapMsg::DoneUp { phase } => {
                out.push(6);
                put_varint(out, *phase);
            }
            SeapMsg::K(m) => {
                out.push(7);
                m.encode(out);
            }
            SeapMsg::Dht(m) => {
                out.push(8);
                m.encode(out);
            }
            SeapMsg::Resp(m) => {
                out.push(9);
                m.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SeapMsg::Begin { phase: r.varint()? }),
            1 => Ok(SeapMsg::CountUp {
                phase: r.varint()?,
                count: r.varint()?,
            }),
            2 => Ok(SeapMsg::StartInserts {
                phase: r.varint()?,
                wit: Interval::decode(r)?,
            }),
            3 => Ok(SeapMsg::CountBelow {
                phase: r.varint()?,
                key_k: Key::decode(r)?,
            }),
            4 => Ok(SeapMsg::StoreCountUp {
                phase: r.varint()?,
                count: r.varint()?,
            }),
            5 => Ok(SeapMsg::Assign {
                phase: r.varint()?,
                key_k: Option::<Key>::decode(r)?,
                store: Interval::decode(r)?,
                del: Interval::decode(r)?,
                wit: Interval::decode(r)?,
            }),
            6 => Ok(SeapMsg::DoneUp { phase: r.varint()? }),
            7 => Ok(SeapMsg::K(KMsg::decode(r)?)),
            8 => Ok(SeapMsg::Dht(RouteMsg::<DhtReq>::decode(r)?)),
            9 => Ok(SeapMsg::Resp(DhtResp::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "SeapMsg",
                tag,
            }),
        }
    }
}

impl Wire for DigestEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        put_varint(out, self.incarnation);
        put_varint(out, self.max_version);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DigestEntry {
            node: NodeId::decode(r)?,
            incarnation: r.varint()?,
            max_version: r.varint()?,
        })
    }
}

impl Wire for NodeDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        put_varint(out, self.incarnation);
        self.entries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeDelta {
            node: NodeId::decode(r)?,
            incarnation: r.varint()?,
            entries: Vec::<(u64, u64, u64)>::decode(r)?,
        })
    }
}

impl Wire for GossipMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GossipMsg::Syn { window } => {
                out.push(0);
                window.encode(out);
            }
            GossipMsg::SynAck { delta, want } => {
                out.push(1);
                delta.encode(out);
                want.encode(out);
            }
            GossipMsg::Ack { delta } => {
                out.push(2);
                delta.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(GossipMsg::Syn {
                window: Vec::<DigestEntry>::decode(r)?,
            }),
            1 => Ok(GossipMsg::SynAck {
                delta: Vec::<NodeDelta>::decode(r)?,
                want: Vec::<DigestEntry>::decode(r)?,
            }),
            2 => Ok(GossipMsg::Ack {
                delta: Vec::<NodeDelta>::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "GossipMsg",
                tag,
            }),
        }
    }
}

impl<M: Wire> Wire for ReliableMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReliableMsg::Data { seq, msg } => {
                out.push(0);
                put_varint(out, *seq);
                msg.encode(out);
            }
            ReliableMsg::Ack { seq, cum } => {
                out.push(1);
                put_varint(out, *seq);
                put_varint(out, *cum);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ReliableMsg::Data {
                seq: r.varint()?,
                msg: M::decode(r)?,
            }),
            1 => Ok(ReliableMsg::Ack {
                seq: r.varint()?,
                cum: r.varint()?,
            }),
            tag => Err(WireError::BadTag {
                what: "ReliableMsg",
                tag,
            }),
        }
    }
}
