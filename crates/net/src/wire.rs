//! The wire encoding: a hand-rolled, panic-free binary codec.
//!
//! The workspace deliberately carries no serialization dependency (the
//! `BitSize` trait only *costs* messages, it does not encode them), so the
//! socket runtime defines its own: LEB128 varints for integers, IEEE-754
//! bits for the routing targets, explicit one-byte tags for enums, and
//! length-guarded vectors. Two properties are load-bearing and tested:
//!
//! * **round-trip** — `decode(encode(m)) == m` for every message type
//!   ([`to_bytes`]/[`from_bytes`]);
//! * **panic-free decode** — a decoder consuming attacker-controlled bytes
//!   (truncated, oversized, garbage) returns [`WireError`], never panics
//!   and never allocates proportionally to a length it has not yet seen
//!   bytes for (`tests/codec_props.rs`).

use std::fmt;

/// Why a decode failed. All variants are plain data — no payload can itself
/// fail to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran longer than the 10 bytes a u64 can need.
    VarintOverflow,
    /// A declared length exceeds the bytes actually present — rejected
    /// before allocating.
    LengthOverrun {
        /// Which type was being decoded.
        what: &'static str,
        /// The declared element count.
        declared: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// The value decoded, but trailing bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        count: usize,
    },
    /// A frame or handshake violated the framing layer's rules.
    Frame(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated mid-value"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            WireError::VarintOverflow => write!(f, "varint longer than a u64"),
            WireError::LengthOverrun {
                what,
                declared,
                remaining,
            } => write!(
                f,
                "{what}: declared {declared} elements but only {remaining} bytes remain"
            ),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
            WireError::Frame(why) => write!(f, "framing: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a byte slice. Every read checks bounds and returns
/// [`WireError::Truncated`] instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an LEB128 varint into a u64.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let payload = (b & 0x7f) as u64;
            // The 10th byte may only contribute the single remaining bit.
            if shift == 63 && payload > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Read a bool encoded as a 0/1 byte; anything else is an error.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    /// Read an f64 from its little-endian IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let mut raw = [0u8; 8];
        for b in &mut raw {
            *b = self.u8()?;
        }
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Read a declared element count and reject it if even one byte per
    /// element cannot be present — the guard that keeps a forged
    /// multi-gigabyte length from allocating anything.
    pub fn seq_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let declared = self.varint()?;
        let remaining = self.remaining();
        if declared > remaining as u64 {
            return Err(WireError::LengthOverrun {
                what,
                declared,
                remaining,
            });
        }
        Ok(declared as usize)
    }
}

/// Append an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a bool as a 0/1 byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append an f64 as little-endian IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A type with a wire encoding. Implementations live in
/// [`codec`](crate::codec), one per message/aggregate type.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode a value into a fresh byte vector.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

/// Decode a value from a byte slice, requiring the slice be consumed
/// exactly — trailing bytes are an error, like a frame that lied about its
/// length.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(v)
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("Vec")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

// Wire-identical to `Vec<T>`: the inline/spill split is a memory-layout
// concern, not a protocol one.
impl<T: Wire + Copy + Default, const N: usize> Wire for dpq_arena::SmallVec<T, N> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self.iter() {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("SmallVec")?;
        let mut v = dpq_arena::SmallVec::new();
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("String")?;
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..n {
            bytes.push(r.u8()?);
        }
        String::from_utf8(bytes).map_err(|_| WireError::Frame("invalid utf-8".into()))
    }
}

/// Raw length-prefixed bytes (used for WAL payloads, where the inner frame
/// is decoded lazily at replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBytes(pub Vec<u8>);

impl Wire for RawBytes {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.0.len() as u64);
        out.extend_from_slice(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("RawBytes")?;
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..n {
            bytes.push(r.u8()?);
        }
        Ok(RawBytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_across_magnitudes() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let bytes = to_bytes(&v);
            assert_eq!(from_bytes::<u64>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes: longer than any u64.
        let bytes = [0xffu8; 11];
        assert_eq!(Reader::new(&bytes).varint(), Err(WireError::VarintOverflow));
        // 10 bytes whose last contributes more than the one available bit.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x7f);
        assert_eq!(Reader::new(&bytes).varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn forged_length_is_rejected_before_allocating() {
        // Vec length u64::MAX with a 2-byte buffer.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.push(0);
        let err = from_bytes::<Vec<u64>>(&buf).unwrap_err();
        assert!(matches!(err, WireError::LengthOverrun { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = to_bytes(&7u64);
        buf.push(9);
        assert_eq!(
            from_bytes::<u64>(&buf),
            Err(WireError::TrailingBytes { count: 1 })
        );
    }
}
