//! Daemon configuration: CLI flag parsing and the cluster fingerprint.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::frame::ProtoId;
use crate::transport::Addr;

/// Everything a `dpq-node` process needs to know, parsed from flags.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which protocol this cluster runs.
    pub proto: ProtoId,
    /// Cluster size.
    pub n: usize,
    /// This node's id, `0 ≤ me < n`.
    pub me: u64,
    /// Deployment seed (topology, configs, candidate sets).
    pub seed: u64,
    /// Skeap's priority-universe size.
    pub n_prios: usize,
    /// KSelect: total candidates m.
    pub m: u64,
    /// KSelect: the rank to select.
    pub k: u64,
    /// KSelect: priority universe for candidate generation.
    pub prio_space: u64,
    /// Where this node accepts peer connections.
    pub listen: Addr,
    /// Peer id → where to dial it.
    pub peers: BTreeMap<u64, Addr>,
    /// Where this node accepts control connections.
    pub ctl: Addr,
    /// Reliable-layer retransmission timeout, in ticks.
    pub rto_ticks: u64,
    /// Wall-clock milliseconds per activation tick.
    pub tick_ms: u64,
    /// Write-ahead log path (crash-recover); `None` disables logging.
    pub wal: Option<PathBuf>,
    /// JSONL trace path written on `Dump`; `None` disables dumping.
    pub trace: Option<PathBuf>,
    /// Run the gossip membership sidecar (frames gain a one-byte lane tag).
    pub gossip: bool,
    /// Phi-accrual suspicion threshold for the sidecar's detector.
    pub phi: f64,
    /// Grace ticks between detector confirmation and eviction.
    pub evict_ticks: u64,
}

/// Fingerprint of the parameters every member of a cluster must agree on,
/// carried in each handshake so two clusters on one host cannot
/// cross-connect. FNV-1a over the identity-defining fields.
pub fn cluster_fingerprint(proto: ProtoId, n: usize, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(match proto {
        ProtoId::Skeap => 1,
        ProtoId::Seap => 2,
        ProtoId::KSelect => 3,
        ProtoId::Ctl => 4,
    });
    eat(n as u64);
    eat(seed);
    h
}

/// Fold the gossip marker into a base fingerprint. A gossip-on node frames
/// every peer message with a lane tag a gossip-off node would misparse, so
/// mixed clusters must refuse each other at the hello — same mechanism as a
/// seed mismatch.
pub fn gossip_fingerprint(mut h: u64) -> u64 {
    for b in 5u64.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl NodeConfig {
    /// This deployment's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let base = cluster_fingerprint(self.proto, self.n, self.seed);
        if self.gossip {
            gossip_fingerprint(base)
        } else {
            base
        }
    }

    /// Parse the `dpq-node` flag vector (everything after argv[0]).
    pub fn parse_args(args: &[String]) -> Result<NodeConfig, String> {
        let mut proto = None;
        let mut n = None;
        let mut me = None;
        let mut seed = 0u64;
        let mut n_prios = 4usize;
        let mut m = 64u64;
        let mut k = 1u64;
        let mut prio_space = 1 << 20;
        let mut listen = None;
        let mut peers = BTreeMap::new();
        let mut ctl = None;
        let mut rto_ticks = 64u64;
        let mut tick_ms = 2u64;
        let mut wal = None;
        let mut trace = None;
        let mut gossip = false;
        let mut phi = 8.0f64;
        let mut evict_ticks = 64u64;

        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut val = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--proto" => proto = Some(ProtoId::parse(&val()?)?),
                "--n" => n = Some(val()?.parse::<usize>().map_err(|e| e.to_string())?),
                "--id" => me = Some(val()?.parse::<u64>().map_err(|e| e.to_string())?),
                "--seed" => {
                    seed = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--n-prios" => {
                    n_prios = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--m" => {
                    m = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--k" => {
                    k = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--prio-space" => {
                    prio_space = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--listen" => listen = Some(Addr::parse(&val()?)?),
                "--ctl" => ctl = Some(Addr::parse(&val()?)?),
                "--peer" => {
                    let v = val()?;
                    let (id, addr) = v
                        .split_once('=')
                        .ok_or_else(|| format!("--peer {v:?} must be <id>=<addr>"))?;
                    let id: u64 = id
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                    peers.insert(id, Addr::parse(addr)?);
                }
                "--rto" => {
                    rto_ticks = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--tick-ms" => {
                    tick_ms = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--wal" => wal = Some(PathBuf::from(val()?)),
                "--trace" => trace = Some(PathBuf::from(val()?)),
                "--gossip" => gossip = true,
                "--phi" => {
                    phi = val()?
                        .parse()
                        .map_err(|e: std::num::ParseFloatError| e.to_string())?
                }
                "--evict-ticks" => {
                    evict_ticks = val()?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }

        let proto = proto.ok_or("--proto is required")?;
        let n = n.ok_or("--n is required")?;
        let me = me.ok_or("--id is required")?;
        if me as usize >= n {
            return Err(format!("--id {me} out of range for --n {n}"));
        }
        if rto_ticks == 0 {
            return Err("--rto must be positive".into());
        }
        Ok(NodeConfig {
            proto,
            n,
            me,
            seed,
            n_prios,
            m,
            k,
            prio_space,
            listen: listen.ok_or("--listen is required")?,
            peers,
            ctl: ctl.ok_or("--ctl is required")?,
            rto_ticks,
            tick_ms,
            wal,
            trace,
            gossip,
            phi,
            evict_ticks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn full_flag_vector_parses() {
        let cfg = NodeConfig::parse_args(&args(
            "--proto skeap --n 3 --id 1 --seed 42 --n-prios 4 \
             --listen uds:/tmp/n1.sock --ctl uds:/tmp/n1.ctl \
             --peer 0=uds:/tmp/n0.sock --peer 2=tcp:127.0.0.1:7002 \
             --rto 32 --tick-ms 1 --wal /tmp/n1.wal --trace /tmp/n1.jsonl",
        ))
        .unwrap();
        assert_eq!(cfg.proto, ProtoId::Skeap);
        assert_eq!(cfg.me, 1);
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[&2], Addr::Tcp("127.0.0.1:7002".into()));
        assert_eq!(cfg.rto_ticks, 32);
        assert!(cfg.wal.is_some());
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(NodeConfig::parse_args(&args("--proto skeap --n 3")).is_err());
        assert!(NodeConfig::parse_args(&args(
            "--proto skeap --n 3 --id 5 --listen uds:/a --ctl uds:/b"
        ))
        .is_err());
        assert!(NodeConfig::parse_args(&args(
            "--proto nope --n 3 --id 0 --listen uds:/a --ctl uds:/b"
        ))
        .is_err());
        assert!(NodeConfig::parse_args(&args("--wat")).is_err());
    }

    #[test]
    fn fingerprints_separate_clusters() {
        let a = cluster_fingerprint(ProtoId::Skeap, 5, 1);
        assert_eq!(a, cluster_fingerprint(ProtoId::Skeap, 5, 1));
        assert_ne!(a, cluster_fingerprint(ProtoId::Skeap, 5, 2));
        assert_ne!(a, cluster_fingerprint(ProtoId::Seap, 5, 1));
        assert_ne!(a, cluster_fingerprint(ProtoId::Skeap, 6, 1));
        // Gossip-on and gossip-off clusters must not interconnect.
        assert_ne!(a, gossip_fingerprint(a));
        assert_eq!(gossip_fingerprint(a), gossip_fingerprint(a));
    }

    #[test]
    fn gossip_flags_parse_and_mark_the_fingerprint() {
        let base = "--proto skeap --n 3 --id 0 --listen uds:/a --ctl uds:/b";
        let plain = NodeConfig::parse_args(&args(base)).unwrap();
        assert!(!plain.gossip);
        let g = NodeConfig::parse_args(&args(&format!(
            "{base} --gossip --phi 4.5 --evict-ticks 32"
        )))
        .unwrap();
        assert!(g.gossip);
        assert_eq!(g.phi, 4.5);
        assert_eq!(g.evict_ticks, 32);
        assert_ne!(plain.fingerprint(), g.fingerprint());
        assert_eq!(g.fingerprint(), gossip_fingerprint(plain.fingerprint()));
    }
}
