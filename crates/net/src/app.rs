//! Per-protocol glue: how the generic runtime builds, drives, and inspects
//! each of the three node types.
//!
//! The nodes themselves are *unmodified* — exactly the types the simulator
//! schedulers drive. Each process constructs the full deterministic cluster
//! from `(n, seed, …)` the same way the sim drivers do (topology, configs,
//! and KSelect's candidate sets are pure functions of those parameters) and
//! keeps only its own node, so every process agrees on the deployment
//! without any coordination beyond the flag vector.

use crate::config::NodeConfig;
use crate::frame::ProtoId;
use dpq_core::{Element, Key, OpId, OpRecord};
use dpq_sim::Protocol;
use kselect::{KSelectConfig, KSelectNode};
use seap::SeapNode;
use skeap::SkeapNode;

/// What the runtime needs from a protocol node beyond [`Protocol`].
pub trait NetApp: Protocol + Sized
where
    Self::Msg: Clone,
{
    /// The protocol tag carried in every handshake.
    const PROTO: ProtoId;

    /// Build this process's node from the deployment parameters.
    fn build(cfg: &NodeConfig) -> Result<Self, String>;

    /// Issue `Insert(prio, payload)`; `Err` if the protocol does not take
    /// online operations or the priority is outside its universe.
    fn enqueue(&mut self, prio: u64, payload: u64) -> Result<OpId, String>;

    /// Issue `DeleteMin()`.
    fn dequeue(&mut self) -> Result<OpId, String>;

    /// This node's op records, issue order.
    fn records(&self) -> Vec<OpRecord>;

    /// Elements resident in this node's DHT shard (conservation residual),
    /// sorted by `(prio, id)` like the sim drivers report them.
    fn residual(&self) -> Vec<Element>;

    /// KSelect's announced result, once known.
    fn result_key(&self) -> Option<Key> {
        None
    }

    /// Requests issued at this node.
    fn issued(&self) -> u64;

    /// Requests completed at this node.
    fn completed(&self) -> u64;

    /// Have all issued requests completed?
    fn all_complete(&self) -> bool;
}

fn sorted_residual(elems: impl Iterator<Item = Element>) -> Vec<Element> {
    let mut v: Vec<Element> = elems.collect();
    v.sort_by_key(|e| (e.prio, e.id));
    v
}

impl NetApp for SkeapNode {
    const PROTO: ProtoId = ProtoId::Skeap;

    fn build(cfg: &NodeConfig) -> Result<Self, String> {
        if cfg.n_prios == 0 {
            return Err("--n-prios must be positive".into());
        }
        Ok(skeap::cluster::build(cfg.n, cfg.n_prios, cfg.seed).swap_remove(cfg.me as usize))
    }

    fn enqueue(&mut self, prio: u64, payload: u64) -> Result<OpId, String> {
        if prio as usize >= self.cfg.n_prios {
            return Err(format!(
                "priority {prio} outside the constant universe 0..{}",
                self.cfg.n_prios
            ));
        }
        Ok(self.issue_insert(prio, payload))
    }

    fn dequeue(&mut self) -> Result<OpId, String> {
        Ok(self.issue_delete())
    }

    fn records(&self) -> Vec<OpRecord> {
        self.history.ops.clone()
    }

    fn residual(&self) -> Vec<Element> {
        sorted_residual(self.shard.elements().map(|(_, e)| *e))
    }

    fn issued(&self) -> u64 {
        self.history.ops.len() as u64
    }

    fn completed(&self) -> u64 {
        SkeapNode::completed(self) as u64
    }

    fn all_complete(&self) -> bool {
        SkeapNode::all_complete(self)
    }
}

impl NetApp for SeapNode {
    const PROTO: ProtoId = ProtoId::Seap;

    fn build(cfg: &NodeConfig) -> Result<Self, String> {
        Ok(seap::cluster::build(cfg.n, cfg.seed).swap_remove(cfg.me as usize))
    }

    fn enqueue(&mut self, prio: u64, payload: u64) -> Result<OpId, String> {
        Ok(self.issue_insert(prio, payload))
    }

    fn dequeue(&mut self) -> Result<OpId, String> {
        Ok(self.issue_delete())
    }

    fn records(&self) -> Vec<OpRecord> {
        self.history.ops.clone()
    }

    fn residual(&self) -> Vec<Element> {
        sorted_residual(self.shard.elements().map(|(_, e)| *e))
    }

    fn issued(&self) -> u64 {
        self.history.ops.len() as u64
    }

    fn completed(&self) -> u64 {
        self.history.ops.iter().filter(|r| r.is_complete()).count() as u64
    }

    fn all_complete(&self) -> bool {
        SeapNode::all_complete(self)
    }
}

impl NetApp for KSelectNode {
    const PROTO: ProtoId = ProtoId::KSelect;

    fn build(cfg: &NodeConfig) -> Result<Self, String> {
        if cfg.k == 0 || cfg.k > cfg.m {
            return Err(format!("--k {} out of range for --m {}", cfg.k, cfg.m));
        }
        let per_node = kselect::driver::random_candidates(cfg.n, cfg.m, cfg.prio_space, cfg.seed);
        Ok(
            kselect::driver::build(cfg.n, per_node, cfg.k, KSelectConfig::default(), cfg.seed)
                .swap_remove(cfg.me as usize),
        )
    }

    fn enqueue(&mut self, _prio: u64, _payload: u64) -> Result<OpId, String> {
        Err("kselect is a one-shot selection, not an online queue".into())
    }

    fn dequeue(&mut self) -> Result<OpId, String> {
        Err("kselect is a one-shot selection, not an online queue".into())
    }

    fn records(&self) -> Vec<OpRecord> {
        Vec::new()
    }

    fn residual(&self) -> Vec<Element> {
        Vec::new()
    }

    fn result_key(&self) -> Option<Key> {
        self.result
    }

    fn issued(&self) -> u64 {
        0
    }

    fn completed(&self) -> u64 {
        0
    }

    // The selection is "complete" at this node once the result is announced.
    fn all_complete(&self) -> bool {
        self.result.is_some()
    }
}
