//! Event-sourced write-ahead log: crash-recover for an in-memory node.
//!
//! The protocol nodes keep all state in memory; a SIGKILL would normally
//! lose it. Instead of snapshotting opaque state, the runtime logs every
//! *input* — activations, delivered raw frames, control-plane operations —
//! to an append-only file **before** acting on it, and flushes its own
//! outbound frames only **after** the append. On restart the runtime
//! replays the log through a fresh node (outputs suppressed) and resumes
//! from the recorded tick. That ordering makes the recovery argument purely
//! a transport argument:
//!
//! * any frame a peer sent that we processed is in the log → replay
//!   re-derives its effects (and its acks are re-sent on demand, because
//!   peers retransmit anything unacked);
//! * any frame we *sent* but whose effects were not logged cannot exist:
//!   sends happen after the append, so a send implies its cause is durable;
//! * anything in flight at the kill is simply a lossy network from the
//!   `Reliable` layer's point of view — retransmit + dedup absorb it.
//!
//! A torn tail (killed mid-append) is detected by the length-prefixed
//! entry framing and truncated away; `write` without `fsync` is durable
//! against process kill (the bytes live in the page cache), which is the
//! fault model here — the fault matrix's crash-recover cell, not power loss.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::wire::{from_bytes, put_varint, to_bytes, RawBytes, Reader, Wire, WireError};

/// One logged input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// The node was activated at logical tick `now`.
    Activate {
        /// Logical tick of the activation.
        now: u64,
    },
    /// A wire frame from `from` was accepted at tick `now`. The payload is
    /// the raw frame so replay decodes it exactly as the live path did.
    Deliver {
        /// Logical tick of the delivery.
        now: u64,
        /// Sending node.
        from: u64,
        /// The undecoded frame payload.
        frame: RawBytes,
    },
    /// A control-plane operation was issued at tick `now`.
    CtlOp {
        /// Logical tick of the issue.
        now: u64,
        /// What was issued.
        op: CtlOpKind,
    },
}

/// The loggable control-plane operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlOpKind {
    /// `Insert(prio, payload)`.
    Insert {
        /// The element's priority.
        prio: u64,
        /// The element's payload.
        payload: u64,
    },
    /// `DeleteMin()`.
    DeleteMin,
}

impl Wire for CtlOpKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtlOpKind::Insert { prio, payload } => {
                out.push(0);
                put_varint(out, *prio);
                put_varint(out, *payload);
            }
            CtlOpKind::DeleteMin => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(CtlOpKind::Insert {
                prio: r.varint()?,
                payload: r.varint()?,
            }),
            1 => Ok(CtlOpKind::DeleteMin),
            tag => Err(WireError::BadTag {
                what: "CtlOpKind",
                tag,
            }),
        }
    }
}

impl WalEntry {
    /// The logical tick this entry was logged at.
    pub fn now(&self) -> u64 {
        match self {
            WalEntry::Activate { now }
            | WalEntry::Deliver { now, .. }
            | WalEntry::CtlOp { now, .. } => *now,
        }
    }
}

impl Wire for WalEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalEntry::Activate { now } => {
                out.push(0);
                put_varint(out, *now);
            }
            WalEntry::Deliver { now, from, frame } => {
                out.push(1);
                put_varint(out, *now);
                put_varint(out, *from);
                frame.encode(out);
            }
            WalEntry::CtlOp { now, op } => {
                out.push(2);
                put_varint(out, *now);
                op.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WalEntry::Activate { now: r.varint()? }),
            1 => Ok(WalEntry::Deliver {
                now: r.varint()?,
                from: r.varint()?,
                frame: RawBytes::decode(r)?,
            }),
            2 => Ok(WalEntry::CtlOp {
                now: r.varint()?,
                op: CtlOpKind::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "WalEntry",
                tag,
            }),
        }
    }
}

/// An open write-ahead log, positioned for appending.
pub struct Wal {
    file: File,
}

impl Wal {
    /// Open (or create) the log at `path`, read back every complete entry,
    /// truncate any torn tail, and leave the file positioned for appends.
    pub fn open(path: &Path) -> std::io::Result<(Wal, Vec<WalEntry>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut entries = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 4 {
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            if bytes.len() - pos - 4 < len {
                break; // torn tail: length written, payload incomplete
            }
            match from_bytes::<WalEntry>(&bytes[pos + 4..pos + 4 + len]) {
                Ok(e) => entries.push(e),
                Err(_) => break, // torn or corrupt payload: stop here
            }
            pos += 4 + len;
        }
        file.set_len(pos as u64)?;
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((Wal { file }, entries))
    }

    /// Append one entry and push it to the OS (durable against process
    /// kill). Callers act on the input only after this returns.
    pub fn append(&mut self, entry: &WalEntry) -> std::io::Result<()> {
        let payload = to_bytes(entry);
        let mut rec = Vec::with_capacity(payload.len() + 4);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.file.write_all(&rec)?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dpq-wal-{}-{name}.bin", std::process::id()))
    }

    #[test]
    fn entries_survive_reopen() {
        let path = temp_wal("reopen");
        let _ = std::fs::remove_file(&path);
        let entries = vec![
            WalEntry::Activate { now: 1 },
            WalEntry::Deliver {
                now: 2,
                from: 4,
                frame: RawBytes(vec![1, 2, 3]),
            },
            WalEntry::CtlOp {
                now: 3,
                op: CtlOpKind::Insert {
                    prio: 1,
                    payload: 9,
                },
            },
            WalEntry::CtlOp {
                now: 4,
                op: CtlOpKind::DeleteMin,
            },
        ];
        {
            let (mut wal, read) = Wal::open(&path).unwrap();
            assert!(read.is_empty());
            for e in &entries {
                wal.append(e).unwrap();
            }
        }
        let (_, read) = Wal::open(&path).unwrap();
        assert_eq!(read, entries);
        assert_eq!(read.last().unwrap().now(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&WalEntry::Activate { now: 1 }).unwrap();
            wal.append(&WalEntry::Activate { now: 2 }).unwrap();
        }
        // Simulate a kill mid-append: chop bytes off the tail.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut wal, read) = Wal::open(&path).unwrap();
        assert_eq!(read, vec![WalEntry::Activate { now: 1 }]);
        wal.append(&WalEntry::Activate { now: 5 }).unwrap();
        let (_, read) = Wal::open(&path).unwrap();
        assert_eq!(
            read,
            vec![WalEntry::Activate { now: 1 }, WalEntry::Activate { now: 5 }]
        );
        let _ = std::fs::remove_file(&path);
    }
}
