//! Peer connection manager: one outbound writer per peer with
//! reconnect/backoff, one listener fanning inbound frames into the runtime's
//! event queue.
//!
//! Connections are *unidirectional*: node `i` dials node `j` for its `i → j`
//! traffic, so each ordered pair owns exactly one stream and there is no
//! simultaneous-open tie to break. A writer that cannot connect (peer not up
//! yet, peer crashed) retries with exponential backoff; frames queued while
//! the link is down overflow a bounded queue and are *dropped*, counted in
//! [`PeerWire::send_drops`] — the `Reliable` layer above retransmits, which
//! is exactly the fault model it was built for. Nothing here blocks the
//! runtime thread: `send` is a bounded `try_send`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::backoff::Backoff;
use crate::frame::{
    read_frame, read_hello, write_frame, write_hello, Hello, ProtoId, WIRE_VERSION,
};
use crate::transport::{Addr, Conn, Listener};
use dpq_telemetry::WireMetrics;

/// Per-peer outbound queue depth. Sized for the burst a whole batch cycle
/// can emit; overflow drops (and counts) rather than blocking the runtime.
const SEND_QUEUE: usize = 4096;

/// Initial reconnect backoff.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(500);

#[derive(Default)]
struct PeerCounters {
    tx_frames: AtomicU64,
    tx_bytes: AtomicU64,
    reconnects: AtomicU64,
    send_drops: AtomicU64,
    /// Peer retired by the failure detector: sends drop, the writer parks.
    retired: AtomicBool,
}

struct Shared {
    shutdown: AtomicBool,
    /// Outbound counters, fixed key set (one entry per configured peer).
    tx: BTreeMap<u64, PeerCounters>,
    /// Inbound counters keyed by the sender a hello announced.
    rx: Mutex<BTreeMap<u64, (u64, u64)>>,
}

/// Runs the socket threads for one node: outbound writers with
/// reconnect/backoff, an accept loop, and per-connection readers pushing
/// `(from, frame)` pairs into the runtime's queue.
pub struct PeerManager {
    senders: BTreeMap<u64, mpsc::SyncSender<Vec<u8>>>,
    shared: Arc<Shared>,
}

impl PeerManager {
    /// Bind `listen`, start the accept loop, and start one writer thread per
    /// entry of `peers`. Inbound frames arrive on `inbox` as
    /// `(sender, payload)`.
    pub fn start(
        me: u64,
        proto: ProtoId,
        cluster: u64,
        listen: &Addr,
        peers: &BTreeMap<u64, Addr>,
        inbox: mpsc::Sender<(u64, Vec<u8>)>,
    ) -> std::io::Result<PeerManager> {
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            tx: peers
                .keys()
                .map(|&p| (p, PeerCounters::default()))
                .collect(),
            rx: Mutex::new(BTreeMap::new()),
        });

        let listener = Listener::bind(listen)?;
        {
            let shared = Arc::clone(&shared);
            let inbox = inbox.clone();
            thread::spawn(move || accept_loop(listener, proto, cluster, shared, inbox));
        }

        let mut senders = BTreeMap::new();
        for (&peer, addr) in peers {
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(SEND_QUEUE);
            senders.insert(peer, tx);
            let addr = addr.clone();
            let shared = Arc::clone(&shared);
            let hello = Hello {
                version: WIRE_VERSION,
                proto,
                cluster,
                sender: me,
            };
            thread::spawn(move || writer_loop(peer, addr, hello, shared, rx));
        }

        Ok(PeerManager { senders, shared })
    }

    /// Queue a frame for `dst`. Never blocks; a full or torn-down queue
    /// drops the frame and counts it (the reliable layer retransmits).
    pub fn send(&self, dst: u64, frame: Vec<u8>) {
        let Some(sender) = self.senders.get(&dst) else {
            return;
        };
        if let Some(c) = self.shared.tx.get(&dst) {
            if c.retired.load(Ordering::Relaxed) {
                c.send_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if sender.try_send(frame).is_err() {
            if let Some(c) = self.shared.tx.get(&dst) {
                c.send_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Retire `dst`: the failure detector has confirmed it dead, so stop
    /// dialing (the writer thread parks instead of hammering a dead address
    /// with reconnects) and drop anything queued for it. Idempotent.
    pub fn retire(&self, dst: u64) {
        if let Some(c) = self.shared.tx.get(&dst) {
            c.retired.store(true, Ordering::SeqCst);
        }
    }

    /// Un-retire `dst`: the detector saw it return (higher incarnation),
    /// so resume dialing. Idempotent.
    pub fn revive(&self, dst: u64) {
        if let Some(c) = self.shared.tx.get(&dst) {
            c.retired.store(false, Ordering::SeqCst);
        }
    }

    /// Is `dst` currently retired?
    pub fn is_retired(&self, dst: u64) -> bool {
        self.shared
            .tx
            .get(&dst)
            .is_some_and(|c| c.retired.load(Ordering::SeqCst))
    }

    /// Snapshot the per-peer counters (ack-RTT histograms are recorded by
    /// the runtime, not here).
    pub fn wire_metrics(&self) -> WireMetrics {
        let mut w = WireMetrics::new();
        for (&peer, c) in &self.shared.tx {
            let pw = w.peer_mut(peer);
            pw.tx_frames = c.tx_frames.load(Ordering::Relaxed);
            pw.tx_bytes = c.tx_bytes.load(Ordering::Relaxed);
            pw.reconnects = c.reconnects.load(Ordering::Relaxed);
            pw.send_drops = c.send_drops.load(Ordering::Relaxed);
        }
        for (&peer, &(frames, bytes)) in self.shared.rx.lock().unwrap().iter() {
            let pw = w.peer_mut(peer);
            pw.rx_frames = frames;
            pw.rx_bytes = bytes;
        }
        w
    }

    /// Ask every thread to wind down. Threads notice within one backoff /
    /// read-timeout interval; process exit reaps whatever is left.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

fn writer_loop(
    peer: u64,
    addr: Addr,
    hello: Hello,
    shared: Arc<Shared>,
    rx: mpsc::Receiver<Vec<u8>>,
) {
    let mut connected_before = false;
    // Seeded by the ordered pair so every dialer draws its own schedule —
    // peers that observed the same crash do not stampede the restart.
    let mut backoff = Backoff::new(
        BACKOFF_MIN,
        BACKOFF_MAX,
        hello.sender.wrapping_mul(0x9E37_79B9).wrapping_add(peer),
    );
    'reconnect: while !shared.shutdown.load(Ordering::SeqCst) {
        // A retired peer is not dialed at all: park (draining the queue so
        // the runtime can never block) until the detector revives it.
        if shared
            .tx
            .get(&peer)
            .is_some_and(|c| c.retired.load(Ordering::SeqCst))
        {
            drain_queue(&rx, &shared, peer);
            thread::sleep(BACKOFF_MAX);
            backoff.reset();
            continue;
        }
        let mut conn = match Conn::connect(&addr) {
            Ok(c) => c,
            Err(_) => {
                // Drain whatever queued while down so the runtime never
                // blocks; count the drops.
                drain_queue(&rx, &shared, peer);
                thread::sleep(backoff.next_delay());
                continue;
            }
        };
        backoff.reset();
        if write_hello(&mut conn, &hello)
            .and_then(|_| conn.flush())
            .is_err()
        {
            thread::sleep(backoff.next_delay());
            continue;
        }
        if connected_before {
            if let Some(c) = shared.tx.get(&peer) {
                c.reconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
        connected_before = true;

        loop {
            let frame = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(f) => f,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            let len = frame.len() as u64;
            if write_frame(&mut conn, &frame)
                .and_then(|_| conn.flush())
                .is_err()
            {
                if let Some(c) = shared.tx.get(&peer) {
                    c.send_drops.fetch_add(1, Ordering::Relaxed);
                }
                continue 'reconnect;
            }
            if let Some(c) = shared.tx.get(&peer) {
                c.tx_frames.fetch_add(1, Ordering::Relaxed);
                c.tx_bytes.fetch_add(len, Ordering::Relaxed);
            }
        }
    }
}

/// Drop (and count) everything queued for a peer that cannot take frames.
fn drain_queue(rx: &mpsc::Receiver<Vec<u8>>, shared: &Shared, peer: u64) {
    let mut dropped = 0;
    while rx.try_recv().is_ok() {
        dropped += 1;
    }
    if dropped > 0 {
        if let Some(c) = shared.tx.get(&peer) {
            c.send_drops.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

fn accept_loop(
    listener: Listener,
    proto: ProtoId,
    cluster: u64,
    shared: Arc<Shared>,
    inbox: mpsc::Sender<(u64, Vec<u8>)>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let shared = Arc::clone(&shared);
        let inbox = inbox.clone();
        thread::spawn(move || reader_loop(conn, proto, cluster, shared, inbox));
    }
}

fn reader_loop(
    mut conn: Conn,
    proto: ProtoId,
    cluster: u64,
    shared: Arc<Shared>,
    inbox: mpsc::Sender<(u64, Vec<u8>)>,
) {
    // A bounded handshake wait so a half-open connection cannot pin the
    // thread; after the hello the link blocks with a timeout so shutdown is
    // noticed.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let from = match read_hello(&mut conn, proto, cluster) {
        Ok(h) => h.sender,
        Err(_) => return,
    };
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut conn) {
            Ok(Some(payload)) => {
                {
                    let mut rx = shared.rx.lock().unwrap();
                    let e = rx.entry(from).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += payload.len() as u64;
                }
                if inbox.send((from, payload)).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sock(name: &str) -> Addr {
        let dir = std::env::temp_dir();
        Addr::Uds(dir.join(format!("dpq-peers-{}-{name}.sock", std::process::id())))
    }

    #[test]
    fn frames_flow_between_two_managers() {
        let a_addr = temp_sock("a");
        let b_addr = temp_sock("b");
        let (a_in, a_rx) = mpsc::channel();
        let (b_in, b_rx) = mpsc::channel();
        let a = PeerManager::start(
            0,
            ProtoId::Skeap,
            7,
            &a_addr,
            &BTreeMap::from([(1u64, b_addr.clone())]),
            a_in,
        )
        .unwrap();
        let b = PeerManager::start(
            1,
            ProtoId::Skeap,
            7,
            &b_addr,
            &BTreeMap::from([(0u64, a_addr.clone())]),
            b_in,
        )
        .unwrap();

        a.send(1, vec![1, 2, 3]);
        let (from, payload) = b_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, payload), (0, vec![1, 2, 3]));

        b.send(0, vec![9]);
        let (from, payload) = a_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, payload), (1, vec![9]));

        let wm = a.wire_metrics();
        assert_eq!(wm.peer(1).unwrap().tx_frames, 1);
        assert_eq!(wm.peer(1).unwrap().tx_bytes, 3);
        assert_eq!(wm.peer(1).unwrap().rx_frames, 1);

        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn sends_before_the_peer_exists_are_dropped_not_blocking() {
        let addr = temp_sock("lonely");
        let peer_addr = temp_sock("ghost");
        let (tx, _rx) = mpsc::channel();
        let m = PeerManager::start(
            0,
            ProtoId::Seap,
            1,
            &addr,
            &BTreeMap::from([(1u64, peer_addr)]),
            tx,
        )
        .unwrap();
        // Never blocks even though peer 1 is down.
        for i in 0..SEND_QUEUE + 10 {
            m.send(1, vec![i as u8]);
        }
        m.shutdown();
    }

    #[test]
    fn retired_peers_drop_frames_until_revived() {
        let a_addr = temp_sock("r1");
        let b_addr = temp_sock("r2");
        let (a_in, _a_rx) = mpsc::channel();
        let (b_in, b_rx) = mpsc::channel();
        let a = PeerManager::start(
            0,
            ProtoId::Skeap,
            7,
            &a_addr,
            &BTreeMap::from([(1u64, b_addr.clone())]),
            a_in,
        )
        .unwrap();
        let _b = PeerManager::start(
            1,
            ProtoId::Skeap,
            7,
            &b_addr,
            &BTreeMap::from([(0u64, a_addr.clone())]),
            b_in,
        )
        .unwrap();
        // Live first, so the link exists before the retire.
        a.send(1, vec![1]);
        b_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        a.retire(1);
        assert!(a.is_retired(1));
        let drops_before = a.wire_metrics().peer(1).unwrap().send_drops;
        a.send(1, vec![2]);
        a.send(1, vec![3]);
        assert!(b_rx.recv_timeout(Duration::from_millis(300)).is_err());
        let drops_after = a.wire_metrics().peer(1).unwrap().send_drops;
        assert_eq!(drops_after, drops_before + 2);

        a.revive(1);
        assert!(!a.is_retired(1));
        a.send(1, vec![4]);
        let (_, payload) = b_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(payload, vec![4]);
        a.shutdown();
    }

    #[test]
    fn cross_cluster_connections_are_refused() {
        let a_addr = temp_sock("x1");
        let b_addr = temp_sock("x2");
        let (a_in, _a_rx) = mpsc::channel();
        let (b_in, b_rx) = mpsc::channel();
        // b expects cluster 99; a dials with cluster 7 → b's reader drops
        // the connection at the handshake and no frame is ever delivered.
        let a = PeerManager::start(
            0,
            ProtoId::Skeap,
            7,
            &a_addr,
            &BTreeMap::from([(1u64, b_addr.clone())]),
            a_in,
        )
        .unwrap();
        let b = PeerManager::start(
            1,
            ProtoId::Skeap,
            99,
            &b_addr,
            &BTreeMap::from([(0u64, a_addr.clone())]),
            b_in,
        )
        .unwrap();
        a.send(1, vec![5]);
        assert!(b_rx.recv_timeout(Duration::from_millis(800)).is_err());
        a.shutdown();
        b.shutdown();
    }
}
