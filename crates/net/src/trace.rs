//! JSONL op-record traces: what each `dpq-node` process writes and the
//! conformance harness reads back.
//!
//! One flat JSON object per line, hand-rolled like `dpq-mc`'s
//! `schedule.json` (the workspace carries no serde) and round-trip-tested.
//! Two line shapes:
//!
//! * `{"t":"op","node":…,"seq":…,"kind":"ins"|"del",…,"ret":…,"wit":…}` —
//!   one completed (or still-open) operation record;
//! * `{"t":"res","e_id":…,"e_prio":…,"e_pay":…}` — one element still
//!   resident in the node's DHT shard at dump time (the conservation
//!   oracle's residual set).
//!
//! The harness merges the `op` lines of all processes into a
//! [`History`](dpq_core::History) and feeds it to the same witness-replay /
//! conservation oracles the simulator tests use.

use std::fmt::Write as _;

use dpq_core::{ElemId, Element, NodeId, OpId, OpKind, OpRecord, OpReturn, Priority};

fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn push_elem(out: &mut String, prefix: &str, e: &Element) {
    let _ = write!(
        out,
        ",\"{prefix}_id\":{},\"{prefix}_prio\":{},\"{prefix}_pay\":{}",
        e.id.0, e.prio.0, e.payload
    );
}

fn parse_elem(line: &str, prefix: &str) -> Option<Element> {
    Some(Element {
        id: ElemId(num_field(line, &format!("{prefix}_id"))?),
        prio: Priority(num_field(line, &format!("{prefix}_prio"))?),
        payload: num_field(line, &format!("{prefix}_pay"))?,
    })
}

/// Render one op record as a JSONL line (no trailing newline).
pub fn op_line(r: &OpRecord) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"t\":\"op\",\"node\":{},\"seq\":{}",
        r.id.node.0, r.id.seq
    );
    match &r.kind {
        OpKind::Insert(e) => {
            out.push_str(",\"kind\":\"ins\"");
            push_elem(&mut out, "e", e);
        }
        OpKind::DeleteMin => out.push_str(",\"kind\":\"del\""),
    }
    match &r.ret {
        None => out.push_str(",\"ret\":\"none\""),
        Some(OpReturn::Inserted) => out.push_str(",\"ret\":\"inserted\""),
        Some(OpReturn::Bottom) => out.push_str(",\"ret\":\"bottom\""),
        Some(OpReturn::Removed(e)) => {
            out.push_str(",\"ret\":\"removed\"");
            push_elem(&mut out, "r", e);
        }
    }
    if let Some(w) = r.witness {
        let _ = write!(out, ",\"wit\":{w}");
    }
    out.push('}');
    out
}

/// Render one residual element as a JSONL line (no trailing newline).
pub fn residual_line(e: &Element) -> String {
    let mut out = String::from("{\"t\":\"res\"");
    push_elem(&mut out, "e", e);
    out.push('}');
    out
}

/// Render a node's full trace: every op record, then every residual element.
pub fn render_trace(records: &[OpRecord], residual: &[Element]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&op_line(r));
        out.push('\n');
    }
    for e in residual {
        out.push_str(&residual_line(e));
        out.push('\n');
    }
    out
}

/// Parse a trace back into `(records, residual)`. Lines that do not parse
/// are errors — a trace is machine-written, so leniency would only mask
/// bugs.
pub fn parse_trace(text: &str) -> Result<(Vec<OpRecord>, Vec<Element>), String> {
    let mut records = Vec::new();
    let mut residual = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |what: &str| format!("line {}: {what}: {line}", i + 1);
        match str_field(line, "t") {
            Some("op") => {
                let id = OpId {
                    node: NodeId(num_field(line, "node").ok_or_else(|| fail("missing node"))?),
                    seq: num_field(line, "seq").ok_or_else(|| fail("missing seq"))?,
                };
                let kind = match str_field(line, "kind") {
                    Some("ins") => OpKind::Insert(
                        parse_elem(line, "e").ok_or_else(|| fail("missing insert element"))?,
                    ),
                    Some("del") => OpKind::DeleteMin,
                    _ => return Err(fail("bad kind")),
                };
                let ret = match str_field(line, "ret") {
                    Some("none") => None,
                    Some("inserted") => Some(OpReturn::Inserted),
                    Some("bottom") => Some(OpReturn::Bottom),
                    Some("removed") => Some(OpReturn::Removed(
                        parse_elem(line, "r").ok_or_else(|| fail("missing removed element"))?,
                    )),
                    _ => return Err(fail("bad ret")),
                };
                records.push(OpRecord {
                    id,
                    kind,
                    ret,
                    witness: num_field(line, "wit"),
                });
            }
            Some("res") => {
                residual.push(parse_elem(line, "e").ok_or_else(|| fail("bad residual"))?);
            }
            _ => return Err(fail("unknown line type")),
        }
    }
    Ok((records, residual))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(id: u64, prio: u64, pay: u64) -> Element {
        Element::new(ElemId(id), Priority(prio), pay)
    }

    #[test]
    fn traces_round_trip() {
        let records = vec![
            OpRecord {
                id: OpId {
                    node: NodeId(0),
                    seq: 0,
                },
                kind: OpKind::Insert(elem(77, 3, 41)),
                ret: Some(OpReturn::Inserted),
                witness: Some(12),
            },
            OpRecord {
                id: OpId {
                    node: NodeId(2),
                    seq: 1,
                },
                kind: OpKind::DeleteMin,
                ret: Some(OpReturn::Removed(elem(77, 3, 41))),
                witness: Some(13),
            },
            OpRecord {
                id: OpId {
                    node: NodeId(2),
                    seq: 2,
                },
                kind: OpKind::DeleteMin,
                ret: Some(OpReturn::Bottom),
                witness: Some(14),
            },
            OpRecord {
                id: OpId {
                    node: NodeId(1),
                    seq: 0,
                },
                kind: OpKind::DeleteMin,
                ret: None,
                witness: None,
            },
        ];
        let residual = vec![elem(5, 0, 1), elem(9, 2, 2)];
        let text = render_trace(&records, &residual);
        let (r2, e2) = parse_trace(&text).unwrap();
        assert_eq!(r2, records);
        assert_eq!(e2, residual);
    }

    #[test]
    fn garbage_lines_are_errors() {
        assert!(parse_trace("{\"t\":\"op\"}").is_err());
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"t\":\"wat\"}").is_err());
        assert!(parse_trace("").unwrap().0.is_empty());
    }
}
