//! The node runtime: drives one `Reliable<P>` over real sockets.
//!
//! A single event loop owns the node. Peer reader threads and control
//! connections feed one queue; the loop interleaves three kinds of turns:
//!
//! * **tick** — every `tick_ms` the logical clock advances and the node is
//!   activated, exactly the simulator's periodic-activation model. The
//!   `Reliable` layer's retransmission timeout is measured in these ticks.
//! * **delivery** — an inbound frame is decoded and delivered via
//!   `on_message`. Undecodable frames are counted and dropped — to the
//!   protocol that is just message loss, which the transport absorbs.
//! * **control** — a `dpq-ctl` request (status / enqueue / dequeue / dump /
//!   metrics / shutdown) runs between node turns, so the control plane can
//!   never observe a half-applied protocol step.
//!
//! With `--wal` every input is appended to the write-ahead log *before* the
//! node processes it, and outbound frames are flushed only *after* the
//! append (see [`crate::wal`] for the recovery argument). On restart the
//! log replays through a fresh node with outputs suppressed, then the loop
//! resumes at the recorded tick.

use std::collections::BTreeMap;
use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::app::NetApp;
use crate::config::NodeConfig;
use crate::ctl::{serve_ctl, CtlReq, CtlResp, StatusInfo};
use crate::peers::PeerManager;
use crate::trace::render_trace;
use crate::transport::Listener;
use crate::wal::{CtlOpKind, Wal, WalEntry};
use crate::wire::{from_bytes, to_bytes, RawBytes, Wire};
use dpq_core::{NodeId, OpId};
use dpq_gossip::{DetectorConfig, GossipConfig, GossipMsg, GossipNode};
use dpq_sim::{Ctx, CtxEvent, Hub, LogHistogram, Protocol, Reliable, ReliableMsg};
use dpq_telemetry::{prometheus_text, prometheus_wire_text};

/// Frame lane tags, used only when the gossip sidecar is on: byte 0 of every
/// peer frame says which state machine it belongs to. With gossip off the
/// wire format is byte-identical to a sidecar-less build (and the cluster
/// fingerprint differs, so mixed clusters refuse each other's hellos).
const LANE_APP: u8 = 0;
/// Membership lane (see [`LANE_APP`]).
const LANE_GOSSIP: u8 = 1;

/// One unit of work for the runtime's event loop.
pub enum Event {
    /// An inbound peer frame: `(sender, payload)`.
    Net(u64, Vec<u8>),
    /// A control request and where to send its response.
    Ctl(CtlReq, mpsc::Sender<CtlResp>),
}

/// The runtime driving one node. Generic over the protocol via [`NetApp`].
pub struct NodeRuntime<P: NetApp>
where
    P::Msg: Clone + Wire,
{
    cfg: NodeConfig,
    node: Reliable<P>,
    /// Logical clock: advances once per activation tick (not per delivery),
    /// so the retransmission timeout keeps its "activations since last
    /// send" meaning from the simulator.
    now: u64,
    wal: Option<Wal>,
    peers: PeerManager,
    events: mpsc::Receiver<Event>,
    /// Self-addressed frames re-enter the event queue here: the protocols
    /// freely send to their own node (the simulator delivers those like any
    /// other message), but no peer connection exists for `me`.
    loopback: mpsc::Sender<Event>,
    /// `(dst, seq) → tick of last transmission`, for per-peer ack RTT.
    rtt_pending: BTreeMap<(u64, u64), u64>,
    /// Per-peer ack RTT histograms (ticks).
    ack_rtt: BTreeMap<u64, LogHistogram>,
    /// `op → issue tick`, for the op-latency histogram.
    op_issued: BTreeMap<OpId, u64>,
    op_latency: LogHistogram,
    rx_decode_errors: u64,
    /// The membership sidecar (`--gossip`). Never WAL-logged: membership is
    /// soft state a restarted node re-learns by gossiping, and replaying
    /// stale heartbeats would only poison the detector.
    gossip: Option<Box<GossipNode>>,
    /// Peers the detector made us retire / later revive at the peer manager.
    detector_retires: u64,
    /// See [`Self::detector_retires`].
    detector_revives: u64,
}

impl<P: NetApp> NodeRuntime<P>
where
    P::Msg: Clone + Wire,
{
    /// Build the node (replaying the WAL if one is configured), bind both
    /// listeners, and connect to the peers.
    pub fn start(cfg: NodeConfig) -> io::Result<Self> {
        let inner = P::build(&cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut node = Reliable::new(inner, cfg.rto_ticks);
        node.enable_rtt_histogram();

        let me = NodeId(cfg.me);
        let mut now = 0u64;
        let wal = match &cfg.wal {
            None => None,
            Some(path) => {
                let (wal, entries) = Wal::open(path)?;
                if let Some(last) = entries.last() {
                    now = last.now() + 1;
                }
                for entry in &entries {
                    replay_entry(&mut node, me, entry);
                }
                Some(wal)
            }
        };

        let (events_tx, events_rx) = mpsc::channel::<Event>();

        // Bridge the peer manager's (from, bytes) channel into the event
        // queue.
        let (net_tx, net_rx) = mpsc::channel::<(u64, Vec<u8>)>();
        {
            let events_tx = events_tx.clone();
            std::thread::spawn(move || {
                while let Ok((from, bytes)) = net_rx.recv() {
                    if events_tx.send(Event::Net(from, bytes)).is_err() {
                        return;
                    }
                }
            });
        }
        let fingerprint = cfg.fingerprint();
        let peers = PeerManager::start(
            cfg.me,
            P::PROTO,
            fingerprint,
            &cfg.listen,
            &cfg.peers,
            net_tx,
        )?;

        let ctl_listener = Listener::bind(&cfg.ctl)?;
        {
            let events_tx = events_tx.clone();
            std::thread::spawn(move || serve_ctl(ctl_listener, fingerprint, events_tx));
        }

        let gossip = cfg.gossip.then(|| {
            let view: Vec<NodeId> = cfg.peers.keys().map(|&p| NodeId(p)).collect();
            let gcfg = GossipConfig {
                detector: DetectorConfig {
                    threshold: cfg.phi,
                    ..DetectorConfig::default()
                },
                evict_ticks: cfg.evict_ticks,
                seed: cfg.seed ^ 0x60551,
                ..GossipConfig::default()
            };
            Box::new(GossipNode::new(me, &view, gcfg))
        });

        Ok(NodeRuntime {
            cfg,
            node,
            now,
            wal,
            peers,
            events: events_rx,
            loopback: events_tx,
            rtt_pending: BTreeMap::new(),
            ack_rtt: BTreeMap::new(),
            op_issued: BTreeMap::new(),
            op_latency: LogHistogram::new(),
            rx_decode_errors: 0,
            gossip,
            detector_retires: 0,
            detector_revives: 0,
        })
    }

    /// Run until a `Shutdown` request arrives.
    pub fn run(mut self) -> io::Result<()> {
        let tick = Duration::from_millis(self.cfg.tick_ms.max(1));
        let mut next_tick = Instant::now() + tick;
        loop {
            if Instant::now() >= next_tick {
                self.on_tick()?;
                next_tick = Instant::now() + tick;
            }
            let timeout = next_tick.saturating_duration_since(Instant::now());
            match self.events.recv_timeout(timeout) {
                Ok(Event::Net(from, bytes)) => self.on_net(from, bytes)?,
                Ok(Event::Ctl(req, reply)) => {
                    let stop = self.on_ctl(req, &reply)?;
                    if stop {
                        self.peers.shutdown();
                        return Ok(());
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }

    fn log(&mut self, entry: &WalEntry) -> io::Result<()> {
        match &mut self.wal {
            Some(wal) => wal.append(entry),
            None => Ok(()),
        }
    }

    fn on_tick(&mut self) -> io::Result<()> {
        self.now += 1;
        self.log(&WalEntry::Activate { now: self.now })?;
        let mut ctx = Ctx::new(NodeId(self.cfg.me), self.now);
        self.node.on_activate(&mut ctx);
        self.flush(ctx);
        self.gossip_tick();
        Ok(())
    }

    /// One sidecar activation: heartbeat, detector lifecycle, Syn fanout —
    /// then reconcile the detector's verdicts with the peer manager.
    fn gossip_tick(&mut self) {
        let Some(g) = self.gossip.as_mut() else {
            return;
        };
        let mut ctx = Ctx::new(NodeId(self.cfg.me), self.now);
        g.on_activate(&mut ctx);
        for env in ctx.take_outbox() {
            let mut bytes = vec![LANE_GOSSIP];
            env.msg.encode(&mut bytes);
            self.peers.send(env.dst.0, bytes);
        }
        for &peer in self.cfg.peers.keys() {
            let dead = g.considers_dead(NodeId(peer));
            if dead != self.peers.is_retired(peer) {
                if dead {
                    self.peers.retire(peer);
                    self.detector_retires += 1;
                } else {
                    self.peers.revive(peer);
                    self.detector_revives += 1;
                }
            }
        }
    }

    /// A membership-lane frame: decode, deliver to the sidecar, flush its
    /// replies. Never WAL-logged (soft state).
    fn on_gossip_frame(&mut self, from: u64, payload: &[u8]) {
        let Some(g) = self.gossip.as_mut() else {
            return;
        };
        let msg: GossipMsg = match from_bytes(payload) {
            Ok(m) => m,
            Err(_) => {
                self.rx_decode_errors += 1;
                return;
            }
        };
        let mut ctx = Ctx::new(NodeId(self.cfg.me), self.now);
        g.on_message(NodeId(from), msg, &mut ctx);
        for env in ctx.take_outbox() {
            let mut bytes = vec![LANE_GOSSIP];
            env.msg.encode(&mut bytes);
            self.peers.send(env.dst.0, bytes);
        }
    }

    fn on_net(&mut self, from: u64, mut bytes: Vec<u8>) -> io::Result<()> {
        if self.gossip.is_some() {
            // Sidecar lanes: strip the tag so the WAL keeps storing plain
            // app frames and replay stays format-compatible.
            match bytes.first() {
                Some(&LANE_APP) => {
                    bytes.remove(0);
                }
                Some(&LANE_GOSSIP) => {
                    self.on_gossip_frame(from, &bytes[1..]);
                    return Ok(());
                }
                _ => {
                    self.rx_decode_errors += 1;
                    return Ok(());
                }
            }
        }
        let msg: ReliableMsg<P::Msg> = match from_bytes(&bytes) {
            Ok(m) => m,
            Err(_) => {
                self.rx_decode_errors += 1;
                return Ok(());
            }
        };
        self.log(&WalEntry::Deliver {
            now: self.now,
            from,
            frame: RawBytes(bytes),
        })?;
        if let ReliableMsg::Ack { seq, .. } = &msg {
            if let Some(sent) = self.rtt_pending.remove(&(from, *seq)) {
                self.ack_rtt
                    .entry(from)
                    .or_default()
                    .record(self.now.saturating_sub(sent));
            }
        }
        let mut ctx = Ctx::new(NodeId(self.cfg.me), self.now);
        self.node.on_message(NodeId(from), msg, &mut ctx);
        self.flush(ctx);
        Ok(())
    }

    /// Encode and hand the node's buffered sends to the peer threads, and
    /// absorb its telemetry notes. Called only after the triggering input
    /// was logged.
    fn flush(&mut self, mut ctx: Ctx<ReliableMsg<P::Msg>>) {
        for env in ctx.take_outbox() {
            if let ReliableMsg::Data { seq, .. } = &env.msg {
                self.rtt_pending.insert((env.dst.0, *seq), self.now);
            }
            let bytes = if self.gossip.is_some() {
                let mut b = vec![LANE_APP];
                env.msg.encode(&mut b);
                b
            } else {
                to_bytes(&env.msg)
            };
            if env.dst.0 == self.cfg.me {
                let _ = self.loopback.send(Event::Net(self.cfg.me, bytes));
            } else {
                self.peers.send(env.dst.0, bytes);
            }
        }
        for ev in ctx.drain_events() {
            if let CtxEvent::OpDone { op } = ev {
                if let Some(issued) = self.op_issued.remove(&op) {
                    self.op_latency.record(self.now.saturating_sub(issued));
                }
            }
        }
    }

    fn status(&self) -> StatusInfo {
        let inner = self.node.inner();
        StatusInfo {
            node: self.cfg.me,
            proto: P::PROTO.name().to_string(),
            issued: inner.issued(),
            completed: inner.completed(),
            all_complete: inner.all_complete(),
            result: inner.result_key(),
            ticks: self.now,
            retransmits: self.node.stats.retransmits,
            dup_suppressed: self.node.stats.dup_suppressed,
            unacked: self.node.unacked() as u64,
        }
    }

    fn metrics_text(&self) -> String {
        let mut hub = Hub::new();
        self.node.export_telemetry(&mut hub);
        {
            use dpq_sim::Telemetry;
            let id = hub.register_counter("net.rx_decode_errors");
            hub.counter_add(id, self.rx_decode_errors);
            let op = hub.register_histogram("net.op_latency_ticks");
            hub.hist_merge(op, &self.op_latency);
            if let Some(g) = &self.gossip {
                g.export_telemetry(&mut hub);
                let r = hub.register_counter("net.detector_retires");
                hub.counter_add(r, self.detector_retires);
                let v = hub.register_counter("net.detector_revives");
                hub.counter_add(v, self.detector_revives);
            }
        }
        let mut wire = self.peers.wire_metrics();
        for (&peer, hist) in &self.ack_rtt {
            wire.peer_mut(peer).ack_rtt.merge(hist);
        }
        wire.fold_into(&mut hub);
        let mut text = prometheus_text(&hub);
        text.push_str(&prometheus_wire_text(&wire));
        text
    }

    /// Handle one control request; `true` means shut down.
    fn on_ctl(&mut self, req: CtlReq, reply: &mpsc::Sender<CtlResp>) -> io::Result<bool> {
        let resp = match req {
            CtlReq::Status => CtlResp::Status(self.status()),
            CtlReq::Enqueue { prio, payload } => {
                self.log(&WalEntry::CtlOp {
                    now: self.now,
                    op: CtlOpKind::Insert { prio, payload },
                })?;
                match self.node.inner_mut().enqueue(prio, payload) {
                    Ok(id) => {
                        self.op_issued.insert(id, self.now);
                        CtlResp::Issued {
                            node: id.node.0,
                            seq: id.seq,
                        }
                    }
                    Err(e) => CtlResp::Error(e),
                }
            }
            CtlReq::Dequeue => {
                self.log(&WalEntry::CtlOp {
                    now: self.now,
                    op: CtlOpKind::DeleteMin,
                })?;
                match self.node.inner_mut().dequeue() {
                    Ok(id) => {
                        self.op_issued.insert(id, self.now);
                        CtlResp::Issued {
                            node: id.node.0,
                            seq: id.seq,
                        }
                    }
                    Err(e) => CtlResp::Error(e),
                }
            }
            CtlReq::Dump => match &self.cfg.trace {
                None => CtlResp::Error("no --trace path configured".into()),
                Some(path) => {
                    let inner = self.node.inner();
                    let records = inner.records();
                    let residual = inner.residual();
                    match std::fs::write(path, render_trace(&records, &residual)) {
                        Ok(()) => CtlResp::Dumped {
                            records: records.len() as u64,
                        },
                        Err(e) => CtlResp::Error(format!("writing trace: {e}")),
                    }
                }
            },
            CtlReq::Metrics => CtlResp::Metrics(self.metrics_text()),
            CtlReq::Shutdown => {
                let _ = reply.send(CtlResp::Bye);
                // The reply travels through a channel to the connection
                // thread, which still has to write the frame; exiting
                // immediately would close the socket under it and the
                // client would see "daemon closed" instead of Bye.
                std::thread::sleep(Duration::from_millis(100));
                return Ok(true);
            }
        };
        let _ = reply.send(resp);
        Ok(false)
    }
}

/// Re-apply one logged input to a fresh node, outputs suppressed. Anything
/// the original run sent either was acked (so the peer moved on), is still
/// in `tx.unacked` after replay (so it retransmits), or was an ack a peer
/// will re-earn by retransmitting its data frame.
fn replay_entry<P: NetApp>(node: &mut Reliable<P>, me: NodeId, entry: &WalEntry)
where
    P::Msg: Clone + Wire,
{
    match entry {
        WalEntry::Activate { now } => {
            let mut ctx = Ctx::new(me, *now);
            node.on_activate(&mut ctx);
        }
        WalEntry::Deliver { now, from, frame } => {
            if let Ok(msg) = from_bytes::<ReliableMsg<P::Msg>>(&frame.0) {
                let mut ctx = Ctx::new(me, *now);
                node.on_message(NodeId(*from), msg, &mut ctx);
            }
        }
        WalEntry::CtlOp { now: _, op } => {
            let _ = match op {
                CtlOpKind::Insert { prio, payload } => node.inner_mut().enqueue(*prio, *payload),
                CtlOpKind::DeleteMin => node.inner_mut().dequeue(),
            };
        }
    }
}
