//! Multi-process test harness: spawn a loopback cluster of `dpq-node` OS
//! processes, drive a workload through the control plane, and feed the
//! dumped traces to the same oracles the simulator tests use.

// Shared by several test binaries, each of which uses a subset of the
// helpers; the unused remainder differs per binary.
#![allow(dead_code)]

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dpq_core::{Element, History, NodeHistory, OpKind, OpReturn};
use dpq_net::ctl::{CtlClient, CtlReq, CtlResp, StatusInfo};
use dpq_net::trace::parse_trace;
use dpq_net::{cluster_fingerprint, gossip_fingerprint, Addr, ProtoId};

/// Which transport the cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    Uds,
    Tcp,
}

/// Cluster parameters.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub name: &'static str,
    pub proto: ProtoId,
    pub n: usize,
    pub seed: u64,
    pub transport: Transport,
    pub wal: bool,
    /// Extra per-node flags, e.g. `["--n-prios", "4"]`.
    pub extra: Vec<String>,
}

impl ClusterSpec {
    pub fn new(name: &'static str, proto: ProtoId, n: usize, seed: u64) -> Self {
        ClusterSpec {
            name,
            proto,
            n,
            seed,
            transport: Transport::Uds,
            wal: false,
            extra: Vec::new(),
        }
    }
}

/// A running cluster. Children are killed on drop, so a panicking test
/// cannot leak daemons.
pub struct Cluster {
    pub spec: ClusterSpec,
    pub dir: PathBuf,
    pub fingerprint: u64,
    pub ctl_addrs: Vec<Addr>,
    node_args: Vec<Vec<String>>,
    procs: Vec<Option<Child>>,
}

impl Cluster {
    /// Spawn all `n` daemons and wait until every control plane answers.
    pub fn spawn(spec: ClusterSpec) -> Cluster {
        let dir =
            std::env::temp_dir().join(format!("dpq-wire-{}-{}", std::process::id(), spec.name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create cluster temp dir");

        // Address plan. For TCP, reserve ports by binding to :0 and
        // releasing them (std listeners take SO_REUSEADDR, so the respawn
        // racing a TIME_WAIT socket is fine).
        let (listen, ctl): (Vec<Addr>, Vec<Addr>) = match spec.transport {
            Transport::Uds => (0..spec.n)
                .map(|i| {
                    (
                        Addr::Uds(dir.join(format!("n{i}.sock"))),
                        Addr::Uds(dir.join(format!("n{i}.ctl"))),
                    )
                })
                .unzip(),
            Transport::Tcp => {
                let holds: Vec<std::net::TcpListener> = (0..spec.n * 2)
                    .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
                    .collect();
                let ports: Vec<u16> = holds
                    .iter()
                    .map(|l| l.local_addr().unwrap().port())
                    .collect();
                drop(holds);
                (0..spec.n)
                    .map(|i| {
                        (
                            Addr::Tcp(format!("127.0.0.1:{}", ports[2 * i])),
                            Addr::Tcp(format!("127.0.0.1:{}", ports[2 * i + 1])),
                        )
                    })
                    .unzip()
            }
        };

        let mut node_args = Vec::new();
        for i in 0..spec.n {
            let mut args: Vec<String> = vec![
                "--proto".into(),
                spec.proto.name().into(),
                "--n".into(),
                spec.n.to_string(),
                "--id".into(),
                i.to_string(),
                "--seed".into(),
                spec.seed.to_string(),
                "--listen".into(),
                listen[i].to_string(),
                "--ctl".into(),
                ctl[i].to_string(),
                "--rto".into(),
                "16".into(),
                "--tick-ms".into(),
                "2".into(),
                "--trace".into(),
                dir.join(format!("n{i}.jsonl")).display().to_string(),
            ];
            for (j, addr) in listen.iter().enumerate() {
                if j != i {
                    args.push("--peer".into());
                    args.push(format!("{j}={addr}"));
                }
            }
            if spec.wal {
                args.push("--wal".into());
                args.push(dir.join(format!("n{i}.wal")).display().to_string());
            }
            args.extend(spec.extra.iter().cloned());
            node_args.push(args);
        }

        let mut fingerprint = cluster_fingerprint(spec.proto, spec.n, spec.seed);
        if spec.extra.iter().any(|f| f == "--gossip") {
            fingerprint = gossip_fingerprint(fingerprint);
        }
        let mut cluster = Cluster {
            spec,
            dir,
            fingerprint,
            ctl_addrs: ctl,
            node_args,
            procs: Vec::new(),
        };
        for i in 0..cluster.spec.n {
            let child = cluster.launch(i);
            cluster.procs.push(Some(child));
        }
        // Every daemon must answer a status before the test proceeds.
        for i in 0..cluster.spec.n {
            cluster.status(i);
        }
        cluster
    }

    fn launch(&self, i: usize) -> Child {
        Command::new(env!("CARGO_BIN_EXE_dpq-node"))
            .args(&self.node_args[i])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn dpq-node")
    }

    /// A fresh control connection to node `i` (retries while it boots).
    pub fn client(&self, i: usize) -> CtlClient {
        CtlClient::connect_retry(
            &self.ctl_addrs[i],
            self.fingerprint,
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("connect ctl of node {i}: {e}"))
    }

    pub fn status(&self, i: usize) -> StatusInfo {
        match self.client(i).request(&CtlReq::Status) {
            Ok(CtlResp::Status(s)) => s,
            other => panic!("status of node {i}: {other:?}"),
        }
    }

    /// SIGKILL node `i` — no grace, no flush; the WAL is the only survivor.
    pub fn kill(&mut self, i: usize) {
        if let Some(mut child) = self.procs[i].take() {
            child.kill().expect("kill dpq-node");
            child.wait().expect("reap dpq-node");
        }
    }

    /// Restart node `i` with its original flag vector.
    pub fn restart(&mut self, i: usize) {
        assert!(self.procs[i].is_none(), "node {i} still running");
        self.procs[i] = Some(self.launch(i));
        self.status(i); // wait until it answers
    }

    /// Poll every node until its issued ops are complete (and, for KSelect,
    /// a result is announced). Panics with full cluster state on timeout.
    pub fn wait_all_complete(&self, deadline: Duration) {
        let end = Instant::now() + deadline;
        let mut clients: Vec<CtlClient> = (0..self.spec.n).map(|i| self.client(i)).collect();
        loop {
            let statuses: Vec<StatusInfo> = clients
                .iter_mut()
                .enumerate()
                .map(|(i, c)| match c.request(&CtlReq::Status) {
                    Ok(CtlResp::Status(s)) => s,
                    other => panic!("status of node {i}: {other:?}"),
                })
                .collect();
            if statuses.iter().all(|s| s.all_complete) {
                return;
            }
            assert!(
                Instant::now() < end,
                "cluster did not quiesce within {deadline:?}: {statuses:#?}"
            );
            std::thread::sleep(Duration::from_millis(40));
        }
    }

    /// Ask every node to dump its trace, then parse and merge them into a
    /// cluster history plus the combined residual element set.
    pub fn collect_history(&self) -> (History, Vec<Element>) {
        let mut nodes = Vec::new();
        let mut residual = Vec::new();
        for i in 0..self.spec.n {
            match self.client(i).request(&CtlReq::Dump) {
                Ok(CtlResp::Dumped { .. }) => {}
                other => panic!("dump of node {i}: {other:?}"),
            }
            let path = self.dir.join(format!("n{i}.jsonl"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read trace {}: {e}", path.display()));
            let (records, res) = parse_trace(&text).expect("parse trace");
            nodes.push(NodeHistory { ops: records });
            residual.extend(res);
        }
        (History::merge(nodes), residual)
    }

    /// Sum of reliable-layer retransmissions across live nodes.
    pub fn total_retransmits(&self) -> u64 {
        (0..self.spec.n).map(|i| self.status(i).retransmits).sum()
    }

    /// Graceful shutdown of every still-running daemon.
    pub fn shutdown(&mut self) {
        for i in 0..self.spec.n {
            if self.procs[i].is_some() {
                if let Ok(CtlResp::Bye) = self.client(i).request(&CtlReq::Shutdown) {
                    if let Some(mut child) = self.procs[i].take() {
                        let _ = child.wait();
                    }
                }
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for p in self.procs.iter_mut() {
            if let Some(mut child) = p.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Drive a generated workload through the cluster's control planes,
/// round-robin across nodes so traffic interleaves.
pub fn drive_workload(cluster: &Cluster, scripts: &[Vec<OpKind>]) {
    let mut clients: Vec<CtlClient> = (0..cluster.spec.n).map(|i| cluster.client(i)).collect();
    let ops_per_node = scripts.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..ops_per_node {
        for (i, script) in scripts.iter().enumerate() {
            let Some(op) = script.get(round) else {
                continue;
            };
            let req = match op {
                OpKind::Insert(e) => CtlReq::Enqueue {
                    prio: e.prio.0,
                    payload: e.payload,
                },
                OpKind::DeleteMin => CtlReq::Dequeue,
            };
            match clients[i].request(&req) {
                Ok(CtlResp::Issued { .. }) => {}
                other => panic!("issue {op:?} at node {i}: {other:?}"),
            }
        }
    }
}

/// Element conservation, exactly as the model checker states it: every
/// element a completed Insert added is either returned by exactly one
/// DeleteMin or still resident in some DHT shard — nothing lost, nothing
/// minted.
pub fn check_conservation(history: &History, mut residual: Vec<Element>) {
    let mut inserted: Vec<Element> = Vec::new();
    let mut removed: Vec<Element> = Vec::new();
    for r in history.records() {
        match (r.kind, r.ret) {
            (OpKind::Insert(e), Some(OpReturn::Inserted)) => inserted.push(e),
            (_, Some(OpReturn::Removed(e))) => removed.push(e),
            _ => {}
        }
    }
    let key = |e: &Element| (e.prio, e.id, e.payload);
    inserted.sort_unstable_by_key(key);
    removed.sort_unstable_by_key(key);
    residual.sort_unstable_by_key(key);
    let mut expected = inserted;
    for e in &removed {
        let i = expected
            .iter()
            .position(|x| key(x) == key(e))
            .unwrap_or_else(|| panic!("removed element {:?} was never inserted", e.id));
        expected.remove(i);
    }
    assert_eq!(
        expected, residual,
        "conservation: inserted − removed ≠ resident"
    );
}

/// The balanced workload the conformance tests run (a small E1-style mix).
pub fn balanced_scripts(
    n: usize,
    ops_per_node: usize,
    n_prios: u64,
    seed: u64,
) -> Vec<Vec<OpKind>> {
    dpq_core::workload::generate(&dpq_core::workload::WorkloadSpec::balanced(
        n,
        ops_per_node,
        n_prios,
        seed,
    ))
}
