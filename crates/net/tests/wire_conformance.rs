//! Tier-6 wire conformance: real `dpq-node` OS processes on loopback must
//! satisfy the same correctness oracles the simulator enforces.
//!
//! Each test spawns a cluster of daemons (Unix sockets or TCP), drives a
//! generated workload through `dpq-ctl`'s client library, waits for
//! quiescence, dumps JSONL traces, and replays the merged history through
//! witness replay / seap phase checking / element conservation — the exact
//! checks `tests/property.rs` and the model checker apply to simulated runs.

mod harness;

use std::time::Duration;

use dpq_net::ctl::{CtlReq, CtlResp};
use dpq_net::ProtoId;
use dpq_semantics::{check_local_consistency, replay, ReplayMode};
use harness::{
    balanced_scripts, check_conservation, drive_workload, Cluster, ClusterSpec, Transport,
};

const QUIESCE: Duration = Duration::from_secs(60);

fn skeap_spec(name: &'static str, n: usize, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(name, ProtoId::Skeap, n, seed);
    spec.extra = vec!["--n-prios".into(), "4".into()];
    spec
}

fn run_skeap_conformance(mut spec: ClusterSpec, ops_per_node: usize) {
    let n = spec.n;
    let seed = spec.seed;
    spec.extra = vec!["--n-prios".into(), "4".into()];
    let mut cluster = Cluster::spawn(spec);
    drive_workload(
        &cluster,
        &balanced_scripts(n, ops_per_node, 4, seed ^ 0xABCD),
    );
    cluster.wait_all_complete(QUIESCE);
    let (history, residual) = cluster.collect_history();
    assert_eq!(history.len(), n * ops_per_node);
    check_local_consistency(&history).expect("local consistency");
    replay(&history, ReplayMode::Fifo).expect("witness replay");
    check_conservation(&history, residual);
    cluster.shutdown();
}

/// The small cluster `scripts/check.sh net` runs as a smoke test.
#[test]
fn smoke_three_process_uds() {
    run_skeap_conformance(skeap_spec("smoke3", 3, 7), 10);
}

#[test]
fn skeap_five_process_uds_passes_sim_oracles() {
    run_skeap_conformance(skeap_spec("skeap5uds", 5, 11), 40);
}

#[test]
fn skeap_five_process_tcp_passes_sim_oracles() {
    let mut spec = skeap_spec("skeap5tcp", 5, 13);
    spec.transport = Transport::Tcp;
    run_skeap_conformance(spec, 40);
}

#[test]
fn seap_five_process_uds_passes_sim_oracles() {
    let n = 5;
    let ops = 30;
    let mut cluster = Cluster::spawn(ClusterSpec::new("seap5uds", ProtoId::Seap, n, 17));
    // Seap takes arbitrary priorities — draw from a large universe.
    drive_workload(&cluster, &balanced_scripts(n, ops, 1 << 20, 99));
    cluster.wait_all_complete(QUIESCE);
    let (history, residual) = cluster.collect_history();
    assert_eq!(history.len(), n * ops);
    // Like `tests/property.rs`: seap's correctness statement is the phase
    // checker plus conservation — its alternating insert/delete phases do
    // not promise per-node witness order for mixed scripts, so
    // `check_local_consistency` is a skeap-only oracle.
    seap::checker::check_seap_history(&history).expect("seap phase order");
    check_conservation(&history, residual);
    cluster.shutdown();
}

#[test]
fn kselect_five_process_uds_agrees_with_sequential_selection() {
    let (n, m, k, prio_space, seed) = (5usize, 64u64, 13u64, 1u64 << 20, 23u64);
    let mut spec = ClusterSpec::new("ksel5uds", ProtoId::KSelect, n, seed);
    spec.extra = vec![
        "--m".into(),
        m.to_string(),
        "--k".into(),
        k.to_string(),
        "--prio-space".into(),
        prio_space.to_string(),
    ];
    let mut cluster = Cluster::spawn(spec);
    // The selection runs by itself; just wait for every node to learn the
    // result and compare against the sequential answer.
    cluster.wait_all_complete(QUIESCE);
    let per_node = kselect::driver::random_candidates(n, m, prio_space, seed);
    let expected = kselect::driver::sequential_select(&per_node, k);
    for i in 0..n {
        let s = cluster.status(i);
        assert_eq!(
            s.result,
            Some(expected),
            "node {i} announced {:?}, sequential answer is {expected:?}",
            s.result
        );
    }
    cluster.shutdown();
}

/// The metrics pull must work over the wire and carry both the reliable
/// transport counters and the per-peer wire families.
#[test]
fn metrics_exposition_is_served_over_the_wire() {
    let n = 3;
    let mut cluster = Cluster::spawn(skeap_spec("metrics3", n, 29));
    drive_workload(&cluster, &balanced_scripts(n, 8, 4, 31));
    cluster.wait_all_complete(QUIESCE);
    let text = match cluster.client(0).request(&CtlReq::Metrics) {
        Ok(CtlResp::Metrics(t)) => t,
        other => panic!("metrics: {other:?}"),
    };
    for family in [
        "dpq_reliable_sent",
        "dpq_reliable_acks_sent",
        "dpq_net_tx_frames_total",
        "dpq_net_rx_frames_total",
        "dpq_net_ack_rtt_ticks",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    // Per-peer labels must name actual peers.
    assert!(
        text.contains("peer=\"1\""),
        "no per-peer labels in:\n{text}"
    );
    cluster.shutdown();
}
