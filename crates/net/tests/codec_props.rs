//! Codec fuzz/property tests: every message alphabet round-trips through
//! the wire codec, and no byte sequence — truncated, mutated, or random —
//! makes the decoder panic or allocate unboundedly.
//!
//! The protocol enums derive `Debug` but not `PartialEq`, so round-trips
//! compare debug renderings; the codec has no float-lossy or order-lossy
//! encodings, so equal renderings imply equal values.

use dpq_core::{DetRng, ElemId, Element, Key, NodeId, Priority};
use dpq_dht::{DhtReq, DhtResp};
use dpq_net::ctl::{CtlReq, CtlResp, StatusInfo};
use dpq_net::wal::{CtlOpKind, WalEntry};
use dpq_net::wire::RawBytes;
use dpq_net::{from_bytes, to_bytes, Wire};
use dpq_overlay::routing::{HopMsg, RouteMsg};
use dpq_overlay::{VirtId, VirtKind};
use dpq_sim::ReliableMsg;
use kselect::msgs::{Compare, Place, Split};
use kselect::{Cmd, KMsg, Rsp};
use seap::SeapMsg;
use skeap::{Batch, BatchEntry, EntryAssign, SkeapMsg};

// ---------------------------------------------------------------- generators

fn key(rng: &mut DetRng) -> Key {
    Key {
        prio: Priority(rng.below(1 << 20)),
        elem: ElemId(rng.next_u64_inline()),
    }
}

fn elem(rng: &mut DetRng) -> Element {
    Element {
        id: ElemId(rng.next_u64_inline()),
        prio: Priority(rng.below(1 << 20)),
        payload: rng.next_u64_inline(),
    }
}

fn virt(rng: &mut DetRng) -> VirtId {
    VirtId {
        real: NodeId(rng.below(64)),
        kind: *rng.pick(&[VirtKind::Left, VirtKind::Middle, VirtKind::Right]),
    }
}

fn interval(rng: &mut DetRng) -> dpq_agg::Interval {
    let lo = rng.below(1000);
    dpq_agg::Interval {
        lo,
        hi: lo + rng.below(1000),
    }
}

fn segments(rng: &mut DetRng) -> dpq_agg::Segments {
    dpq_agg::Segments {
        parts: (0..rng.below(4))
            .map(|_| (rng.below(64), interval(rng)))
            .collect(),
    }
}

fn dht_req(rng: &mut DetRng) -> DhtReq {
    if rng.chance(0.5) {
        DhtReq::Put {
            logical: rng.next_u64_inline(),
            elem: elem(rng),
            reply_to: NodeId(rng.below(64)),
            id: rng.next_u64_inline(),
        }
    } else {
        DhtReq::Get {
            logical: rng.next_u64_inline(),
            reply_to: NodeId(rng.below(64)),
            id: rng.next_u64_inline(),
        }
    }
}

fn dht_resp(rng: &mut DetRng) -> DhtResp {
    if rng.chance(0.5) {
        DhtResp::PutAck {
            id: rng.next_u64_inline(),
        }
    } else {
        DhtResp::GetOk {
            id: rng.next_u64_inline(),
            elem: elem(rng),
        }
    }
}

fn route<M>(rng: &mut DetRng, payload: M) -> RouteMsg<M> {
    RouteMsg {
        target: rng.unit(),
        at: virt(rng),
        steps_done: rng.below(100) as u32,
        walk_back: rng.chance(0.5),
        payload,
    }
}

fn skeap_msg(rng: &mut DetRng) -> SkeapMsg {
    match rng.below(4) {
        0 => SkeapMsg::BatchUp {
            cycle: rng.next_u64_inline(),
            batch: Batch {
                n_prios: rng.below(8) as usize,
                entries: (0..rng.below(4))
                    .map(|_| BatchEntry {
                        ins: (0..rng.below(5)).map(|_| rng.next_u64_inline()).collect(),
                        del: rng.below(10),
                    })
                    .collect(),
            },
        },
        1 => SkeapMsg::Down {
            cycle: rng.next_u64_inline(),
            assigns: (0..rng.below(3))
                .map(|_| EntryAssign {
                    ins: (0..rng.below(3)).map(|_| interval(rng)).collect(),
                    ins_seq: interval(rng),
                    del: segments(rng),
                    bottom: rng.below(10),
                    del_seq: interval(rng),
                    lifo: rng.chance(0.5),
                })
                .collect(),
        },
        2 => {
            let req = dht_req(rng);
            SkeapMsg::Dht(route(rng, req))
        }
        _ => SkeapMsg::Resp(dht_resp(rng)),
    }
}

fn cmd(rng: &mut DetRng) -> Cmd {
    match rng.below(6) {
        0 => Cmd::P1Bounds {
            k: rng.below(100),
            n: rng.below(1000),
        },
        1 => Cmd::P1Prune {
            pmin: key(rng),
            pmax: key(rng),
        },
        2 => Cmd::Sample {
            epoch: rng.below(50),
            prune: if rng.chance(0.5) {
                Some((key(rng), key(rng)))
            } else {
                None
            },
            prob: rng.unit(),
        },
        3 => Cmd::Positions {
            epoch: rng.below(50),
            lo: rng.below(100),
            hi: rng.below(100),
            first: rng.below(100),
            last: rng.below(100),
            n_prime: rng.below(1000),
        },
        4 => Cmd::WindowCount {
            cl: key(rng),
            cr: key(rng),
        },
        _ => Cmd::Announce { result: key(rng) },
    }
}

fn rsp(rng: &mut DetRng) -> Rsp {
    match rng.below(4) {
        0 => Rsp::MinMax {
            pmin: key(rng),
            pmax: key(rng),
        },
        1 => Rsp::Counts {
            below: rng.below(1000),
            above: rng.below(1000),
        },
        2 => Rsp::SampleCount {
            count: rng.below(1000),
        },
        _ => Rsp::Hits {
            lo: rng.chance(0.5).then(|| key(rng)),
            hi: rng.chance(0.5).then(|| key(rng)),
        },
    }
}

fn kmsg(rng: &mut DetRng) -> KMsg {
    match rng.below(8) {
        0 => KMsg::Down(cmd(rng)),
        1 => KMsg::Up(rsp(rng)),
        2 => {
            let p = Place {
                epoch: rng.below(50),
                pos: rng.below(100),
                key: key(rng),
                origin: NodeId(rng.below(64)),
                n_prime: rng.below(1000),
            };
            KMsg::Place(route(rng, p))
        }
        3 => KMsg::Split(HopMsg {
            at: virt(rng),
            walk_back: rng.chance(0.5),
            payload: Split {
                epoch: rng.below(50),
                cand: rng.below(100),
                key: key(rng),
                a: rng.below(100),
                b: rng.below(100),
                parent: NodeId(rng.below(64)),
                parent_copy: rng.below(10),
            },
        }),
        4 => {
            let c = Compare {
                epoch: rng.below(50),
                cand: rng.below(100),
                copy: rng.below(10),
                key: key(rng),
                back: NodeId(rng.below(64)),
            };
            KMsg::Compare(route(rng, c))
        }
        5 => KMsg::CmpResult {
            epoch: rng.below(50),
            cand: rng.below(100),
            copy: rng.below(10),
            smaller: rng.below(100),
            larger: rng.below(100),
        },
        6 => KMsg::CopyAgg {
            epoch: rng.below(50),
            cand: rng.below(100),
            parent_copy: rng.below(10),
            smaller: rng.below(100),
            larger: rng.below(100),
        },
        _ => KMsg::Order {
            epoch: rng.below(50),
            key: key(rng),
            order: rng.below(1000),
        },
    }
}

fn seap_msg(rng: &mut DetRng) -> SeapMsg {
    match rng.below(10) {
        0 => SeapMsg::Begin {
            phase: rng.below(50),
        },
        1 => SeapMsg::CountUp {
            phase: rng.below(50),
            count: rng.below(1000),
        },
        2 => SeapMsg::StartInserts {
            phase: rng.below(50),
            wit: interval(rng),
        },
        3 => SeapMsg::CountBelow {
            phase: rng.below(50),
            key_k: key(rng),
        },
        4 => SeapMsg::StoreCountUp {
            phase: rng.below(50),
            count: rng.below(1000),
        },
        5 => SeapMsg::Assign {
            phase: rng.below(50),
            key_k: rng.chance(0.5).then(|| key(rng)),
            store: interval(rng),
            del: interval(rng),
            wit: interval(rng),
        },
        6 => SeapMsg::DoneUp {
            phase: rng.below(50),
        },
        7 => SeapMsg::K(kmsg(rng)),
        8 => {
            let req = dht_req(rng);
            SeapMsg::Dht(route(rng, req))
        }
        _ => SeapMsg::Resp(dht_resp(rng)),
    }
}

fn reliable<M>(rng: &mut DetRng, msg: M) -> ReliableMsg<M> {
    if rng.chance(0.7) {
        ReliableMsg::Data {
            seq: rng.next_u64_inline(),
            msg,
        }
    } else {
        ReliableMsg::Ack {
            seq: rng.next_u64_inline(),
            cum: rng.next_u64_inline(),
        }
    }
}

// ------------------------------------------------------------------ helpers

/// Round-trip via debug rendering (the protocol enums do not derive
/// `PartialEq`), then check the decoder rejects every strict prefix: the
/// decoder's path is a deterministic function of the byte stream, so a
/// successful full decode means any prefix must run out of bytes mid-field.
fn check_round_trip<T: Wire + std::fmt::Debug>(value: &T) {
    let bytes = to_bytes(value);
    let back: T = from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("decode failed: {e}\nvalue: {value:?}\nbytes: {bytes:?}"));
    assert_eq!(
        format!("{value:?}"),
        format!("{back:?}"),
        "round-trip changed the value"
    );
    for cut in 0..bytes.len() {
        assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded successfully: {value:?}",
            bytes.len()
        );
    }
}

/// Decoding arbitrary bytes must return, never panic. The return value is
/// irrelevant; this is a fuzz pass over the decoder's error paths.
fn check_no_panic<T: Wire + std::fmt::Debug>(rng: &mut DetRng, rounds: usize) {
    for _ in 0..rounds {
        let len = rng.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = from_bytes::<T>(&bytes);
    }
}

/// Flip one byte of a valid encoding; decode must return, never panic.
fn check_mutations<T: Wire + std::fmt::Debug>(rng: &mut DetRng, value: &T) {
    let bytes = to_bytes(value);
    if bytes.is_empty() {
        return;
    }
    for _ in 0..8 {
        let mut mutated = bytes.clone();
        let i = rng.below(mutated.len() as u64) as usize;
        mutated[i] ^= 1 << rng.below(8);
        let _ = from_bytes::<T>(&mutated);
    }
}

const CASES: usize = 300;

// -------------------------------------------------------------------- tests

#[test]
fn skeap_messages_round_trip_and_survive_fuzz() {
    let mut rng = DetRng::new(1);
    for _ in 0..CASES {
        let msg = skeap_msg(&mut rng);
        check_round_trip(&msg);
        check_mutations(&mut rng, &msg);
        let inner = skeap_msg(&mut rng);
        let wrapped = reliable(&mut rng, inner);
        check_round_trip(&wrapped);
        check_mutations(&mut rng, &wrapped);
    }
    check_no_panic::<SkeapMsg>(&mut rng, 2000);
    check_no_panic::<ReliableMsg<SkeapMsg>>(&mut rng, 2000);
}

#[test]
fn seap_messages_round_trip_and_survive_fuzz() {
    let mut rng = DetRng::new(2);
    for _ in 0..CASES {
        let msg = seap_msg(&mut rng);
        check_round_trip(&msg);
        check_mutations(&mut rng, &msg);
        let inner = seap_msg(&mut rng);
        let wrapped = reliable(&mut rng, inner);
        check_round_trip(&wrapped);
        check_mutations(&mut rng, &wrapped);
    }
    check_no_panic::<SeapMsg>(&mut rng, 2000);
    check_no_panic::<ReliableMsg<SeapMsg>>(&mut rng, 2000);
}

#[test]
fn kselect_messages_round_trip_and_survive_fuzz() {
    let mut rng = DetRng::new(3);
    for _ in 0..CASES {
        let msg = kmsg(&mut rng);
        check_round_trip(&msg);
        check_mutations(&mut rng, &msg);
        let inner = kmsg(&mut rng);
        let wrapped = reliable(&mut rng, inner);
        check_round_trip(&wrapped);
        check_mutations(&mut rng, &wrapped);
    }
    check_no_panic::<KMsg>(&mut rng, 2000);
    check_no_panic::<ReliableMsg<KMsg>>(&mut rng, 2000);
}

#[test]
fn control_and_wal_messages_round_trip_and_survive_fuzz() {
    let mut rng = DetRng::new(4);
    for _ in 0..CASES {
        let req = match rng.below(6) {
            0 => CtlReq::Status,
            1 => CtlReq::Enqueue {
                prio: rng.below(1 << 20),
                payload: rng.next_u64_inline(),
            },
            2 => CtlReq::Dequeue,
            3 => CtlReq::Dump,
            4 => CtlReq::Metrics,
            _ => CtlReq::Shutdown,
        };
        check_round_trip(&req);
        check_mutations(&mut rng, &req);

        let resp = match rng.below(6) {
            0 => CtlResp::Status(StatusInfo {
                node: rng.below(64),
                proto: "skeap".into(),
                issued: rng.below(1000),
                completed: rng.below(1000),
                all_complete: rng.chance(0.5),
                result: rng.chance(0.5).then(|| key(&mut rng)),
                ticks: rng.next_u64_inline(),
                retransmits: rng.below(100),
                dup_suppressed: rng.below(100),
                unacked: rng.below(100),
            }),
            1 => CtlResp::Issued {
                node: rng.below(64),
                seq: rng.below(1000),
            },
            2 => CtlResp::Dumped {
                records: rng.below(1000),
            },
            3 => CtlResp::Metrics("dpq_reliable_sent 12\n".into()),
            4 => CtlResp::Error("broken".into()),
            _ => CtlResp::Bye,
        };
        check_round_trip(&resp);
        check_mutations(&mut rng, &resp);

        let entry = match rng.below(3) {
            0 => WalEntry::Activate {
                now: rng.next_u64_inline(),
            },
            1 => WalEntry::Deliver {
                now: rng.next_u64_inline(),
                from: rng.below(64),
                frame: RawBytes((0..rng.below(32)).map(|_| rng.below(256) as u8).collect()),
            },
            _ => WalEntry::CtlOp {
                now: rng.next_u64_inline(),
                op: if rng.chance(0.5) {
                    CtlOpKind::Insert {
                        prio: rng.below(1 << 20),
                        payload: rng.next_u64_inline(),
                    }
                } else {
                    CtlOpKind::DeleteMin
                },
            },
        };
        check_round_trip(&entry);
        check_mutations(&mut rng, &entry);
    }
    check_no_panic::<CtlReq>(&mut rng, 2000);
    check_no_panic::<CtlResp>(&mut rng, 2000);
    check_no_panic::<WalEntry>(&mut rng, 2000);
}

/// A forged header declaring a huge collection must error before allocating
/// anything near the declared size — the `seq_len` guard in the reader.
#[test]
fn forged_collection_lengths_error_before_allocation() {
    // SkeapMsg::Down with assigns-count forged to u64::MAX.
    let mut bytes = vec![1u8]; // Down tag
    bytes.push(0); // cycle = 0
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
    assert!(from_bytes::<SkeapMsg>(&bytes).is_err());

    // A Batch whose entry count exceeds the remaining bytes.
    let mut bytes = vec![0u8]; // BatchUp tag
    bytes.push(0); // cycle
    bytes.push(2); // n_prios
    bytes.push(200); // 200 entries declared, 0 bytes follow
    assert!(from_bytes::<SkeapMsg>(&bytes).is_err());
}
