//! Crash-recover conformance: SIGKILL a `dpq-node` mid-workload, restart it
//! from its write-ahead log, and demand the cluster still satisfies the
//! exactly-once oracles.
//!
//! This is the fault matrix's crash-recover cell run against *real* OS
//! processes: the kill loses every in-memory structure and every in-flight
//! frame; recovery is WAL replay plus the `Reliable` layer's retransmit and
//! dedup. The oracles at the end are the same witness-replay and element
//! conservation checks the simulator applies — duplicated or lost effects
//! of the killed node's operations would break them.

mod harness;

use std::time::Duration;

use dpq_net::ProtoId;
use dpq_semantics::{check_local_consistency, replay, ReplayMode};
use harness::{
    balanced_scripts, check_conservation, drive_workload, Cluster, ClusterSpec, Transport,
};

const QUIESCE: Duration = Duration::from_secs(60);

/// Kill and restart the given node between two workload halves.
fn run_kill_restart(name: &'static str, transport: Transport, seed: u64) {
    let n = 5;
    let ops = 30;
    let victim = 3; // not the anchor: the anchor's tree role is special
    let mut spec = ClusterSpec::new(name, ProtoId::Skeap, n, seed);
    spec.transport = transport;
    spec.wal = true;
    spec.extra = vec!["--n-prios".into(), "4".into()];
    let mut cluster = Cluster::spawn(spec);

    let scripts = balanced_scripts(n, ops, 4, seed ^ 0x51);
    let first: Vec<Vec<_>> = scripts.iter().map(|s| s[..ops / 2].to_vec()).collect();
    let second: Vec<Vec<_>> = scripts.iter().map(|s| s[ops / 2..].to_vec()).collect();

    drive_workload(&cluster, &first);
    // Kill mid-traffic: the victim has issued ops and holds shard elements.
    cluster.kill(victim);
    // Let the survivors run against the dead peer for a while — this is
    // where retransmissions pile up.
    std::thread::sleep(Duration::from_millis(300));
    cluster.restart(victim);

    drive_workload(&cluster, &second);
    cluster.wait_all_complete(QUIESCE);

    // The kill must actually have been disruptive enough to exercise the
    // retransmit path, or this test proves nothing.
    assert!(
        cluster.total_retransmits() > 0,
        "kill/restart produced no retransmissions — the fault was a no-op"
    );

    let restarted = cluster.status(victim);
    assert_eq!(
        restarted.issued, ops as u64,
        "restarted node lost issued ops across the kill"
    );

    let (history, residual) = cluster.collect_history();
    assert_eq!(history.len(), n * ops);
    check_local_consistency(&history).expect("local consistency");
    replay(&history, ReplayMode::Fifo).expect("witness replay");
    check_conservation(&history, residual);
    cluster.shutdown();
}

#[test]
fn skeap_survives_sigkill_and_wal_restart_uds() {
    run_kill_restart("kill-uds", Transport::Uds, 41);
}

#[test]
fn skeap_survives_sigkill_and_wal_restart_tcp() {
    run_kill_restart("kill-tcp", Transport::Tcp, 43);
}

/// A node killed *before* it ever issued an op must also recover (empty WAL
/// replay) and the cluster must still quiesce.
#[test]
fn early_sigkill_with_empty_wal_recovers() {
    let n = 5;
    let ops = 10;
    let mut spec = ClusterSpec::new("kill-early", ProtoId::Skeap, n, 47);
    spec.wal = true;
    spec.extra = vec!["--n-prios".into(), "4".into()];
    let mut cluster = Cluster::spawn(spec);
    cluster.kill(4);
    cluster.restart(4);
    drive_workload(&cluster, &balanced_scripts(n, ops, 4, 53));
    cluster.wait_all_complete(QUIESCE);
    let (history, residual) = cluster.collect_history();
    check_local_consistency(&history).expect("local consistency");
    replay(&history, ReplayMode::Fifo).expect("witness replay");
    check_conservation(&history, residual);
    cluster.shutdown();
}
