//! Detector-driven eviction over real sockets: SIGKILL one daemon of a
//! five-process cluster and let the *gossip sidecar* — not the harness —
//! notice, confirm, and evict it. No scripted membership change anywhere:
//! the only inputs are the kill signal and time.

mod harness;

use std::time::{Duration, Instant};

use dpq_net::ctl::{CtlReq, CtlResp};
use dpq_net::ProtoId;
use harness::{balanced_scripts, drive_workload, Cluster, ClusterSpec};

/// Pull one node's Prometheus metrics text.
fn metrics(cluster: &Cluster, i: usize) -> String {
    match cluster.client(i).request(&CtlReq::Metrics) {
        Ok(CtlResp::Metrics(text)) => text,
        other => panic!("metrics of node {i}: {other:?}"),
    }
}

/// Read a plain counter/gauge sample (`name value`) from exposition text.
fn sample(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

#[test]
fn detector_evicts_a_killed_node_without_scripted_membership() {
    let mut spec = ClusterSpec::new("gossip-kill", ProtoId::Skeap, 5, 0x90551);
    spec.extra = vec![
        "--gossip".into(),
        "--phi".into(),
        "12".into(),
        "--evict-ticks".into(),
        "64".into(),
    ];
    let mut cluster = Cluster::spawn(spec);

    // The app lane works beside the membership lane: a small workload runs
    // to completion with gossip frames interleaved on every link.
    drive_workload(&cluster, &balanced_scripts(5, 4, 4, 9));
    cluster.wait_all_complete(Duration::from_secs(60));

    // Gossip is actually flowing before the kill.
    for i in 0..5 {
        let text = metrics(&cluster, i);
        assert!(
            sample(&text, "dpq_gossip_syn_tx").unwrap_or(0) > 0,
            "node {i} never sent a Syn"
        );
    }

    cluster.kill(4);

    // Every survivor must confirm the death and run its eviction lifecycle
    // — observable as the gossip eviction counter and the detector-driven
    // retire at the peer manager. Nothing told them node 4 is gone.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let evicted = (0..4)
            .filter(|&i| {
                let text = metrics(&cluster, i);
                sample(&text, "dpq_gossip_evictions").unwrap_or(0) >= 1
                    && sample(&text, "dpq_net_detector_retires").unwrap_or(0) >= 1
            })
            .count();
        if evicted == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {evicted}/4 survivors evicted the killed node in time"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // No survivor was taken down with it: each still answers, kept its
    // completed work, and its live view shrank (the killed peer is out; a
    // scheduling-stall false positive could transiently shrink it further,
    // so the bound is one-sided).
    for i in 0..4 {
        let s = cluster.status(i);
        assert!(s.all_complete, "node {i} lost completed work");
        let text = metrics(&cluster, i);
        let view = sample(&text, "dpq_gossip_live_view").expect("live view gauge");
        assert!(view <= 3, "node {i} still counts the killed peer as live");
    }

    cluster.shutdown();
}
