//! The gossip protocol node: anti-entropy exchanges plus the eviction
//! lifecycle, as an ordinary [`Protocol`] — so both schedulers, the fault
//! plans, the model checker, and the socket runtime drive it unchanged.
//!
//! Each gossip round a node bumps its own heartbeat and initiates `fanout`
//! three-way exchanges:
//!
//! ```text
//! A → B  Syn    { digest window }            "here's what I know (a slice)"
//! B → A  SynAck { delta, want }              "here's what you're missing;
//!                                             tell me about these"
//! A → B  Ack    { delta }                    "here you go"
//! ```
//!
//! The digest is a *rotating window* over the membership rather than the
//! full view: a full digest is O(n) per message, which at storm scale turns
//! every round into O(n²) traffic. A window of w entries visits the whole
//! view every ⌈n/w⌉ rounds, so freshness still propagates epidemically while
//! messages stay MTU-sized. The sender's own line is always included — a
//! node is the authority on itself, and this is how joiners advertise.
//!
//! Heartbeat version progress feeds the phi-accrual [`FailureDetector`];
//! confirmed-dead peers are evicted after a grace period: removed from the
//! gossip target set, their state dropped, and a tombstone keyed by
//! incarnation left behind so stragglers cannot gossip the ghost back in. A
//! genuinely returning node bumps its incarnation ([`GossipNode::rejoin`]),
//! which outranks the tombstone everywhere.

use crate::detector::{DetectorConfig, FailureDetector, Health, Verdict};
use crate::state::{gossip_tag_bits, DigestEntry, GossipState, NodeDelta, K_HEARTBEAT};
use dpq_core::{BitSize, DetRng, MsgKind, NodeId};
use dpq_sim::{Ctx, Protocol};
use dpq_telemetry::{LogHistogram, Telemetry};

/// The gossip message alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMsg {
    /// Round opener: a digest window.
    Syn {
        /// `(node, incarnation, max_version)` lines, sender's own first.
        window: Vec<DigestEntry>,
    },
    /// Reply: missing entries plus a pull request.
    SynAck {
        /// Entries the Syn's digest proved the sender lacks.
        delta: Vec<NodeDelta>,
        /// Digest lines the responder knows *less* about — please send.
        want: Vec<DigestEntry>,
    },
    /// Exchange closer: the pulled entries.
    Ack {
        /// Entries answering the `want`.
        delta: Vec<NodeDelta>,
    },
}

impl BitSize for GossipMsg {
    fn bits(&self) -> u64 {
        gossip_tag_bits()
            + match self {
                GossipMsg::Syn { window } => window.bits(),
                GossipMsg::SynAck { delta, want } => delta.bits() + want.bits(),
                GossipMsg::Ack { delta } => delta.bits(),
            }
    }

    fn kind(&self) -> MsgKind {
        match self {
            GossipMsg::Syn { .. } => MsgKind("gossip.syn"),
            GossipMsg::SynAck { .. } => MsgKind("gossip.synack"),
            GossipMsg::Ack { .. } => MsgKind("gossip.ack"),
        }
    }
}

/// Gossip layer tuning.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Exchanges initiated per gossip round.
    pub fanout: usize,
    /// Digest window width; `0` = adaptive `max(16, known/16)`.
    pub window: usize,
    /// Activations between gossip rounds (1 = every activation).
    pub interval: u64,
    /// Failure-detector tuning.
    pub detector: DetectorConfig,
    /// Grace ticks between a peer's confirmation and its eviction.
    pub evict_ticks: u64,
    /// Activation gap treated as "I was paused" — triggers a detector
    /// rebase instead of suspecting every peer at once.
    pub resume_gap: u64,
    /// Per-node RNG stream seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 1,
            window: 0,
            interval: 1,
            detector: DetectorConfig::default(),
            evict_ticks: 8,
            resume_gap: 16,
            seed: 0x60551,
        }
    }
}

/// Cumulative gossip-layer counters.
#[derive(Debug, Clone, Default)]
pub struct GossipStats {
    /// Syn messages sent.
    pub syn_tx: u64,
    /// Syn messages received.
    pub syn_rx: u64,
    /// SynAck messages received.
    pub synack_rx: u64,
    /// Ack messages received.
    pub ack_rx: u64,
    /// Entries merged into local state.
    pub entries_applied: u64,
    /// Nodes first learned about via gossip.
    pub discoveries: u64,
    /// Evicted nodes that returned with a higher incarnation.
    pub rejoins: u64,
    /// Peers evicted by the local lifecycle.
    pub evictions: u64,
    /// Rounds from suspicion start to eviction, per evicted peer.
    pub eviction_latency: LogHistogram,
}

/// A membership node: replicated KV state + failure detector + eviction.
#[derive(Debug, Clone)]
pub struct GossipNode {
    me: NodeId,
    cfg: GossipConfig,
    rng: DetRng,
    state: GossipState,
    detector: FailureDetector,
    /// Live gossip targets (view minus self minus evicted), sorted.
    targets: Vec<NodeId>,
    /// `(node, incarnation)` eviction tombstones, sorted by node.
    tombstones: Vec<(NodeId, u64)>,
    /// Confirmed-dead peers awaiting their eviction grace: `(peer, since,
    /// evict_at)`.
    evict_queue: Vec<(NodeId, u64, u64)>,
    /// Scratch for detector verdicts.
    verdicts: Vec<Verdict>,
    ticks: u64,
    last_activation: Option<u64>,
    /// Rotation cursor of the digest window.
    cursor: usize,
    /// Cumulative counters.
    pub stats: GossipStats,
}

impl GossipNode {
    /// A node knowing `peers` as its initial membership (a joiner passes its
    /// seed contacts; an original member passes the founding set).
    pub fn new(me: NodeId, peers: &[NodeId], cfg: GossipConfig) -> Self {
        let mut state = GossipState::new(me);
        state.set(K_HEARTBEAT, 0);
        let mut detector = FailureDetector::new(cfg.detector);
        let mut targets: Vec<NodeId> = peers.iter().copied().filter(|&p| p != me).collect();
        targets.sort_unstable();
        targets.dedup();
        for &p in &targets {
            detector.register(p, 0);
        }
        GossipNode {
            me,
            rng: DetRng::new(cfg.seed).split(me.0),
            cfg,
            state,
            detector,
            targets,
            tombstones: Vec::new(),
            evict_queue: Vec::new(),
            verdicts: Vec::new(),
            ticks: 0,
            last_activation: None,
            cursor: 0,
            stats: GossipStats::default(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The replicated state (read side).
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// The failure detector (read side).
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Current live view: peers this node would gossip with.
    pub fn live_view(&self) -> &[NodeId] {
        &self.targets
    }

    /// Has this node heard of `peer` (and not evicted it)?
    pub fn knows(&self, peer: NodeId) -> bool {
        self.targets.binary_search(&peer).is_ok()
    }

    /// Does this node currently consider `peer` dead — either Confirmed by
    /// the detector or already evicted?
    pub fn considers_dead(&self, peer: NodeId) -> bool {
        matches!(self.detector.health(peer), Some(Health::Confirmed { .. }))
            || self.is_evicted(peer)
    }

    /// Has the local lifecycle evicted `peer`?
    pub fn is_evicted(&self, peer: NodeId) -> bool {
        self.tombstones.binary_search_by_key(&peer, |e| e.0).is_ok()
    }

    /// Heartbeat counter gossip has replicated for `peer`.
    pub fn heartbeat_of(&self, peer: NodeId) -> Option<u64> {
        self.state.get(peer, K_HEARTBEAT)
    }

    /// Publish a key on this node's own record (replicated by gossip).
    pub fn publish(&mut self, key: u64, value: u64) {
        self.state.set(key, value);
    }

    /// Rejoin after having been evicted elsewhere: bump the incarnation so
    /// the new life outranks every tombstone held against the old one. The
    /// membership layer calls this when a recovered node learns it was
    /// declared dead.
    pub fn rejoin(&mut self) {
        self.state.bump_incarnation();
        self.last_activation = None; // force a detector rebase on next tick
    }

    fn tombstone_at(&self, node: NodeId) -> Option<u64> {
        self.tombstones
            .binary_search_by_key(&node, |e| e.0)
            .ok()
            .map(|i| self.tombstones[i].1)
    }

    fn effective_window(&self) -> usize {
        if self.cfg.window > 0 {
            self.cfg.window
        } else {
            (self.state.len() / 16).max(16)
        }
    }

    fn add_target(&mut self, peer: NodeId, now: u64) {
        if peer == self.me {
            return;
        }
        if let Err(i) = self.targets.binary_search(&peer) {
            self.targets.insert(i, peer);
            self.detector.register(peer, now);
        }
    }

    /// Execute a local eviction: drop the peer's state and detector record,
    /// tombstone its incarnation.
    fn evict(&mut self, peer: NodeId, since: u64, now: u64) {
        let inc = self.state.freshness(peer).map_or(0, |f| f.0);
        if let Ok(i) = self.targets.binary_search(&peer) {
            self.targets.remove(i);
        }
        self.detector.forget(peer);
        self.state.forget(peer);
        match self.tombstones.binary_search_by_key(&peer, |e| e.0) {
            Ok(i) => self.tombstones[i].1 = self.tombstones[i].1.max(inc),
            Err(i) => self.tombstones.insert(i, (peer, inc)),
        }
        self.stats.evictions += 1;
        self.stats
            .eviction_latency
            .record(now.saturating_sub(since));
    }

    /// The rotating digest window starting at the cursor, own line first.
    fn window(&mut self) -> Vec<DigestEntry> {
        let known = self.state.len();
        let w = self.effective_window().min(known);
        let mut out = Vec::with_capacity(w + 1);
        out.push(
            self.state
                .digest_entry(self.me)
                .expect("own record always present"),
        );
        for k in 0..w {
            let node = self.state.node_at((self.cursor + k) % known);
            if node != self.me {
                out.push(self.state.digest_entry(node).expect("indexed id"));
            }
        }
        self.cursor = (self.cursor + w) % known.max(1);
        out
    }

    fn apply_delta(&mut self, delta: &[NodeDelta], now: u64) {
        for nd in delta {
            if nd.node == self.me {
                continue;
            }
            // Tombstoned lives stay dead; higher incarnations void the stone.
            if let Some(t) = self.tombstone_at(nd.node) {
                if nd.incarnation <= t {
                    continue;
                }
                let i = self
                    .tombstones
                    .binary_search_by_key(&nd.node, |e| e.0)
                    .expect("tombstone present");
                self.tombstones.remove(i);
                self.stats.rejoins += 1;
            }
            let out = self.state.apply(nd);
            self.stats.entries_applied += out.applied;
            if out.discovered {
                self.stats.discoveries += 1;
            }
            if out.discovered || out.advanced {
                self.add_target(nd.node, now);
            }
            if out.advanced {
                if let Some(Verdict::Revived(_)) = self.detector.observe(nd.node, now) {
                    // Back from the dead before eviction: cancel the grace.
                    self.evict_queue.retain(|e| e.0 != nd.node);
                }
            }
        }
    }

    fn delta_for(&self, digest: &[DigestEntry], budget: usize) -> Vec<NodeDelta> {
        let tomb = &self.tombstones;
        self.state.delta_for(digest, budget, |n| {
            tomb.binary_search_by_key(&n, |e| e.0).is_ok()
        })
    }

    /// Run the detector + eviction lifecycle for this activation.
    fn lifecycle(&mut self, now: u64) {
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.clear();
        self.detector.tick(now, &mut verdicts);
        for v in &verdicts {
            match *v {
                Verdict::Confirmed(peer, since) => {
                    self.evict_queue
                        .push((peer, since, now + self.cfg.evict_ticks));
                }
                Verdict::Revived(peer) => {
                    self.evict_queue.retain(|e| e.0 != peer);
                }
                Verdict::Suspected(_) => {}
            }
        }
        self.verdicts = verdicts;
        let mut due = 0;
        while due < self.evict_queue.len() {
            if self.evict_queue[due].2 <= now {
                let (peer, since, _) = self.evict_queue.remove(due);
                self.evict(peer, since, now);
            } else {
                due += 1;
            }
        }
    }

    /// Fold this node's gossip and detector activity into a telemetry sink.
    /// Counters are cumulative; call once per node per run.
    pub fn export_telemetry<M: Telemetry>(&self, sink: &mut M) {
        if !M::ENABLED {
            return;
        }
        let pairs = [
            ("gossip.syn_tx", self.stats.syn_tx),
            ("gossip.syn_rx", self.stats.syn_rx),
            ("gossip.synack_rx", self.stats.synack_rx),
            ("gossip.ack_rx", self.stats.ack_rx),
            ("gossip.entries_applied", self.stats.entries_applied),
            ("gossip.discoveries", self.stats.discoveries),
            ("gossip.rejoins", self.stats.rejoins),
            ("gossip.evictions", self.stats.evictions),
        ];
        for (name, v) in pairs {
            let id = sink.register_counter(name);
            sink.counter_add(id, v);
        }
        let d = self.detector.stats();
        let det = [
            ("gossip.suspicions", d.suspicions),
            ("gossip.confirms", d.confirms),
            ("gossip.fp_suspicions", d.fp_suspicions),
            ("gossip.fp_confirms", d.fp_confirms),
        ];
        for (name, v) in det {
            let id = sink.register_counter(name);
            sink.counter_add(id, v);
        }
        let live = sink.register_gauge("gossip.live_view");
        sink.gauge_set(live, self.targets.len() as u64);
        let lat = sink.register_histogram("gossip.eviction_latency");
        sink.hist_merge(lat, &self.stats.eviction_latency);
    }
}

impl Protocol for GossipNode {
    type Msg = GossipMsg;

    fn on_activate(&mut self, ctx: &mut Ctx<GossipMsg>) {
        let now = ctx.now();
        // Pause detection: a long activation gap means *we* were down (or
        // this is our first breath) — silence observed across it says
        // nothing about the peers.
        match self.last_activation {
            Some(prev) if now.saturating_sub(prev) <= self.cfg.resume_gap => {}
            _ => self.detector.rebase_all(now),
        }
        self.last_activation = Some(now);
        self.ticks += 1;
        if self.cfg.interval > 1 && !self.ticks.is_multiple_of(self.cfg.interval) {
            return;
        }
        let hb = self.state.get(self.me, K_HEARTBEAT).unwrap_or(0);
        self.state.set(K_HEARTBEAT, hb + 1);
        self.lifecycle(now);
        if self.targets.is_empty() {
            return;
        }
        for _ in 0..self.cfg.fanout.max(1) {
            let peer = *self.rng.pick(&self.targets);
            let window = self.window();
            self.stats.syn_tx += 1;
            ctx.send(peer, GossipMsg::Syn { window });
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GossipMsg, ctx: &mut Ctx<GossipMsg>) {
        let now = ctx.now();
        // An evicted ghost is ignored — unless it speaks for itself with a
        // higher incarnation. The leading line of a Syn window is the
        // sender's own record, so a genuinely rejoining node (which bumped
        // its incarnation) lifts its tombstone here; without this, two
        // mutually-evicted nodes could never reconcile (each drops the
        // other's Syn, so the higher incarnation is never seen).
        if let Some(stone) = self.tombstone_at(from) {
            let rejoined = matches!(
                &msg,
                GossipMsg::Syn { window }
                    if window.first().is_some_and(|d| d.node == from && d.incarnation > stone)
            );
            if !rejoined {
                return;
            }
            let i = self
                .tombstones
                .binary_search_by_key(&from, |e| e.0)
                .expect("tombstone present");
            self.tombstones.remove(i);
            self.stats.rejoins += 1;
        }
        let budget = self.effective_window() * 4;
        match msg {
            GossipMsg::Syn { window } => {
                self.stats.syn_rx += 1;
                let delta = self.delta_for(&window, budget);
                let tomb = &self.tombstones;
                let want = self.state.wants(&window, |n, inc| {
                    tomb.binary_search_by_key(&n, |e| e.0)
                        .is_ok_and(|i| tomb[i].1 >= inc)
                });
                ctx.send(from, GossipMsg::SynAck { delta, want });
            }
            GossipMsg::SynAck { delta, want } => {
                self.stats.synack_rx += 1;
                self.apply_delta(&delta, now);
                let delta = self.delta_for(&want, budget);
                ctx.send(from, GossipMsg::Ack { delta });
            }
            GossipMsg::Ack { delta } => {
                self.stats.ack_rx += 1;
                self.apply_delta(&delta, now);
            }
        }
    }

    /// Gossip is perpetual soft state — it never blocks quiescence.
    fn done(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_msg_bits_scale_with_payload() {
        let small = GossipMsg::Syn { window: Vec::new() };
        let big = GossipMsg::Syn {
            window: (0..32)
                .map(|i| DigestEntry {
                    node: NodeId(i),
                    incarnation: 0,
                    max_version: i,
                })
                .collect(),
        };
        assert!(big.bits() > small.bits() + 32);
        assert_eq!(small.kind(), MsgKind("gossip.syn"));
    }

    #[test]
    fn window_rotates_and_always_leads_with_self() {
        let peers: Vec<NodeId> = (0..40).map(NodeId).collect();
        let mut node = GossipNode::new(NodeId(3), &peers, GossipConfig::default());
        // Feed the state so the view is the full peer set.
        for &p in &peers {
            if p != NodeId(3) {
                node.apply_delta(
                    &[NodeDelta {
                        node: p,
                        incarnation: 0,
                        entries: vec![(K_HEARTBEAT, 1, 1)],
                    }],
                    0,
                );
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..8 {
            let w = node.window();
            assert_eq!(w[0].node, NodeId(3));
            seen.extend(w.iter().map(|d| d.node));
        }
        // A few rotations cover every known node.
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn eviction_tombstones_block_regossip_until_rejoin() {
        let mut node = GossipNode::new(NodeId(0), &[NodeId(1), NodeId(2)], GossipConfig::default());
        node.apply_delta(
            &[NodeDelta {
                node: NodeId(1),
                incarnation: 0,
                entries: vec![(K_HEARTBEAT, 1, 1)],
            }],
            0,
        );
        node.evict(NodeId(1), 10, 20);
        assert!(node.is_evicted(NodeId(1)));
        assert!(!node.knows(NodeId(1)));
        // Stale gossip about the ghost is ignored…
        node.apply_delta(
            &[NodeDelta {
                node: NodeId(1),
                incarnation: 0,
                entries: vec![(K_HEARTBEAT, 9, 9)],
            }],
            21,
        );
        assert!(!node.knows(NodeId(1)));
        // …but a higher incarnation (rejoin) lifts the tombstone.
        node.apply_delta(
            &[NodeDelta {
                node: NodeId(1),
                incarnation: 1,
                entries: vec![(K_HEARTBEAT, 1, 1)],
            }],
            22,
        );
        assert!(node.knows(NodeId(1)));
        assert!(!node.is_evicted(NodeId(1)));
        assert_eq!(node.stats.rejoins, 1);
        assert_eq!(node.stats.evictions, 1);
    }

    #[test]
    fn telemetry_export_registers_gossip_family() {
        let mut node = GossipNode::new(NodeId(0), &[NodeId(1)], GossipConfig::default());
        node.stats.syn_tx = 5;
        let mut hub = dpq_telemetry::Hub::new();
        node.export_telemetry(&mut hub);
        let syn = hub
            .counters()
            .find(|(name, _)| *name == "gossip.syn_tx")
            .map(|(_, v)| v);
        assert_eq!(syn, Some(5));
    }
}
