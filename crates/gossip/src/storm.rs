//! The churn-storm harness: sustained detector-driven membership churn.
//!
//! A storm runs `n0` live nodes (plus a pool of dormant spares) under the
//! synchronous scheduler with a seeded fault plan: every few rounds a member
//! crashes (fail-pause, recovering later) or a spare wakes up and joins.
//! Nothing splices the membership by fiat — the driver acts only on what the
//! *protocol* reports:
//!
//! * a crashed member leaves the topology only once a quorum of live
//!   members' phi-accrual detectors independently consider it dead;
//! * a joiner enters the topology only once a quorum of live members has
//!   discovered it through gossip.
//!
//! The driver plays the role of the LDB splice executor (the constant-round
//! pred/succ surgery of §1.4(4)): [`dpq_overlay::membership`] does the
//! topology math and the DHT-style element handover rides a [`Reliable`]
//! transport. Crash victims keep their shard across the pause (fail-pause),
//! discover on recovery that the membership moved on, bump their gossip
//! incarnation ([`GossipNode::rejoin`]) and re-home everything they still
//! hold.
//!
//! Two oracles run continuously:
//!
//! * **conservation** — every element placed at round 0 exists somewhere (a
//!   shard or an unacked move buffer) at every scan;
//! * **exactly-once** — no element is ever present in two shards at once
//!   (single extraction plus the reliable layer's dedup make this hold).
//!
//! At the end the storm drains: churn stops, everyone recovers, handovers
//! settle, and every element must sit in exactly the shard the final
//! topology assigns it.

use crate::combine::{SidecarMsg, WithGossip};
use crate::proto::{GossipConfig, GossipNode};
use dpq_core::bitsize::tag_bits;
use dpq_core::{
    hash_to_unit, vlq_bits, BitSize, DetRng, ElemId, Element, MsgKind, NodeId, Priority,
};
use dpq_dht::DhtShard;
use dpq_overlay::{membership, Topology};
use dpq_sim::{Ctx, FaultPlan, Protocol, Reliable, ReliableMsg, SyncScheduler};

/// Hash domain for element placement points.
const ELEM_DOMAIN: u64 = 0xE1E0;

/// Element-handover traffic between homes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XferMsg {
    /// Re-home a batch of `(logical key, element)` pairs.
    Move {
        /// Sender-unique transfer id.
        id: u64,
        /// The pairs changing home.
        pairs: Vec<(u64, Element)>,
    },
    /// Transfer `id` has been ingested.
    MoveAck {
        /// The acknowledged transfer.
        id: u64,
    },
}

impl BitSize for XferMsg {
    fn bits(&self) -> u64 {
        tag_bits(2)
            + match self {
                XferMsg::Move { id, pairs } => vlq_bits(*id) + pairs.bits(),
                XferMsg::MoveAck { id } => vlq_bits(*id),
            }
    }

    fn kind(&self) -> MsgKind {
        match self {
            XferMsg::Move { .. } => MsgKind("storm.move"),
            XferMsg::MoveAck { .. } => MsgKind("storm.move_ack"),
        }
    }
}

/// One node's element home: a DHT shard plus move bookkeeping. Runs under
/// [`Reliable`], so moves are exactly-once and survive drops and pauses.
#[derive(Debug, Clone, Default)]
pub struct HomeNode {
    /// The stored elements.
    pub shard: DhtShard,
    /// Moves queued by the membership layer, sent on next activation.
    outgoing: Vec<(NodeId, XferMsg)>,
    /// Unacked moves `(id, pairs)` — the conservation copy until the new
    /// home acknowledges.
    pub pending: Vec<(u64, Vec<(u64, Element)>)>,
    next_id: u64,
}

impl HomeNode {
    /// Queue `pairs` for transfer to `dst`. The pairs must already be out of
    /// the shard (extracted by the caller); a copy stays in `pending` until
    /// the ack lands, so the element is never unaccounted for.
    pub fn start_move(&mut self, dst: NodeId, pairs: Vec<(u64, Element)>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((id, pairs.clone()));
        self.outgoing.push((dst, XferMsg::Move { id, pairs }));
        id
    }

    /// Is transfer `id` still unacked?
    pub fn move_in_flight(&self, id: u64) -> bool {
        self.pending.iter().any(|p| p.0 == id)
    }

    /// Element ids currently held in the conservation buffer.
    fn buffered_elems(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.pending
            .iter()
            .flat_map(|(_, pairs)| pairs.iter().map(|(_, e)| e.id))
    }
}

impl Protocol for HomeNode {
    type Msg = XferMsg;

    fn on_activate(&mut self, ctx: &mut Ctx<XferMsg>) {
        for (dst, msg) in self.outgoing.drain(..) {
            ctx.send(dst, msg);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: XferMsg, ctx: &mut Ctx<XferMsg>) {
        match msg {
            XferMsg::Move { id, pairs } => {
                self.shard.ingest(pairs);
                ctx.send(from, XferMsg::MoveAck { id });
            }
            XferMsg::MoveAck { id } => {
                self.pending.retain(|p| p.0 != id);
            }
        }
    }

    fn done(&self) -> bool {
        self.outgoing.is_empty() && self.pending.is_empty()
    }
}

/// The full storm node: gossip membership beside a reliable element home.
pub type StormNode = WithGossip<Reliable<HomeNode>>;

/// Message alphabet of a [`StormNode`].
pub type StormMsg = SidecarMsg<ReliableMsg<XferMsg>>;

/// Churn event flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// A member pauses (and later recovers).
    Crash,
    /// A dormant spare wakes and joins.
    Join,
}

/// Per-churn-event restoration timeline (rounds are absolute).
#[derive(Debug, Clone)]
pub struct Restoration {
    /// Crash or join.
    pub kind: ChurnKind,
    /// Scheduler id of the churned node.
    pub node: u64,
    /// Round the event fired.
    pub at: u64,
    /// Members in the topology when it fired.
    pub members_then: usize,
    /// Crash: first live member considered the victim dead. Join: first
    /// live member discovered the joiner.
    pub detect: Option<u64>,
    /// A quorum of live members agreed.
    pub quorum: Option<u64>,
    /// The driver executed the topology splice.
    pub spliced: Option<u64>,
    /// Every handover this event triggered fully acknowledged.
    pub settled: Option<u64>,
    /// Join only: de Bruijn hops to locate the splice position.
    pub locate_hops: usize,
    /// Crash only: the victim recovered before quorum, so no eviction
    /// happened — detector pressure but no membership change.
    pub rescinded: bool,
}

/// Storm shape and tuning.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Master seed (fault plan, churn schedule, gossip RNGs, labels).
    pub seed: u64,
    /// Founding membership size.
    pub n0: usize,
    /// Dormant spares available to join.
    pub spares: usize,
    /// Rounds during which churn events fire.
    pub rounds: u64,
    /// One churn event every this many rounds (alternating crash/join).
    pub churn_every: u64,
    /// Warmup rounds before the first churn event.
    pub warmup: u64,
    /// Rounds a crashed node stays down.
    pub down_for: u64,
    /// Uniform message drop probability.
    pub drop: f64,
    /// Uniform message duplication probability.
    pub dup: f64,
    /// Elements seeded per founding member.
    pub elems_per_node: usize,
    /// Fraction of live members that must agree before the driver splices.
    pub quorum: f64,
    /// Reliable-transport retransmit timeout (rounds).
    pub xfer_timeout: u64,
    /// Conservation-oracle cadence (rounds).
    pub oracle_every: u64,
    /// Extra rounds allowed for the post-storm drain before the harness
    /// declares a livelock.
    pub drain_max: u64,
    /// Gossip layer tuning (detector thresholds live here).
    pub gossip: GossipConfig,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            seed: 0x5702E,
            n0: 192,
            spares: 16,
            rounds: 400,
            churn_every: 16,
            warmup: 48,
            down_for: 160,
            drop: 0.05,
            dup: 0.01,
            elems_per_node: 4,
            quorum: 0.5,
            xfer_timeout: 24,
            oracle_every: 32,
            drain_max: 3000,
            gossip: GossipConfig::default(),
        }
    }
}

/// What a storm run produced. The run itself panics on oracle violations;
/// the report carries the measurements.
#[derive(Debug, Clone, Default)]
pub struct StormReport {
    /// Rounds actually stepped (storm + drain).
    pub rounds_run: u64,
    /// Crash events fired.
    pub crashes: u64,
    /// Join events fired.
    pub joins: u64,
    /// Detector-driven eviction splices executed.
    pub evictions: u64,
    /// Discovery-driven join splices executed.
    pub join_splices: u64,
    /// Crashes that recovered before quorum (no eviction).
    pub rescinded: u64,
    /// Per-event timelines.
    pub restorations: Vec<Restoration>,
    /// Conservation scans performed.
    pub oracle_scans: u64,
    /// Sum over nodes of detector suspicions.
    pub suspicions: u64,
    /// Sum over nodes of detector confirmations.
    pub confirms: u64,
    /// Suspicions cancelled by a later heartbeat (false alarms).
    pub fp_suspicions: u64,
    /// Confirmations cancelled by a later heartbeat.
    pub fp_confirms: u64,
    /// Ground-truth false evictions: splices executed against a node that
    /// was actually up at splice time.
    pub fp_evictions: u64,
    /// Elements seeded (and conserved).
    pub elements: usize,
    /// Final membership size.
    pub members_final: usize,
}

impl StormReport {
    /// Mean rounds from churn event to topology splice, over events that
    /// spliced.
    pub fn mean_restoration(&self) -> Option<f64> {
        let xs: Vec<u64> = self
            .restorations
            .iter()
            .filter_map(|r| Some(r.spliced? - r.at))
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<u64>() as f64 / xs.len() as f64)
        }
    }

    /// Mean rounds from a join event to quorum discovery — the rumor-spread
    /// quantity that scales with log n.
    pub fn mean_join_quorum(&self) -> Option<f64> {
        let xs: Vec<u64> = self
            .restorations
            .iter()
            .filter(|r| r.kind == ChurnKind::Join)
            .filter_map(|r| Some(r.quorum? - r.at))
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<u64>() as f64 / xs.len() as f64)
        }
    }
}

/// Scheduled churn: what the fault plan will do, fixed up front so the plan
/// and the driver agree bit-for-bit.
#[derive(Debug, Clone, Copy)]
struct ChurnEvent {
    round: u64,
    kind: ChurnKind,
    node: u64,
    /// Crash: recovery round. Join: the join round itself.
    recover: u64,
}

/// Driver-side tracking of one in-flight churn event.
struct PendingChurn {
    rest: usize,
    kind: ChurnKind,
    node: u64,
    recover: u64,
    spliced: bool,
    rehomed: bool,
    /// Round of the last nudge that bumped the recovered-un-spliced victim's
    /// incarnation (clears straggler tombstones so the rescind can land).
    /// Re-armed periodically: a straggler can evict *after* a nudge, with a
    /// tombstone at the bumped incarnation only a further bump outranks.
    last_nudge: Option<u64>,
    /// `(sender sched-id, move id)` pairs this event waits on.
    moves: Vec<(u64, u64)>,
}

struct Driver {
    topo: Topology,
    /// Scheduler id of topology node `k`.
    members: Vec<u64>,
    /// Down flags by scheduler id (mirror of the fault schedule).
    down: Vec<bool>,
}

impl Driver {
    fn member_pos(&self, node: u64) -> Option<usize> {
        self.members.iter().position(|&m| m == node)
    }

    fn owner_of(&self, point: f64) -> u64 {
        self.members[self.topo.manager_of(point).real.index()]
    }

    fn up_members(&self) -> impl Iterator<Item = u64> + '_ {
        self.members
            .iter()
            .copied()
            .filter(|&m| !self.down[m as usize])
    }
}

fn elem_point(key: u64) -> f64 {
    hash_to_unit(ELEM_DOMAIN, key)
}

/// Move every misplaced element at every up node (members after a splice,
/// recovered evictees, stragglers that received a stale move) to its current
/// owner. Returns the `(sender, move id)` pairs started.
fn rebalance(sched: &mut SyncScheduler<StormNode>, driver: &Driver) -> Vec<(u64, u64)> {
    let mut started = Vec::new();
    for src in 0..driver.down.len() as u64 {
        if driver.down[src as usize] {
            continue;
        }
        let home = sched.node_mut(NodeId(src)).app.inner_mut();
        let moved = home
            .shard
            .extract_pairs(|k, _| driver.owner_of(elem_point(k)) != src);
        if moved.is_empty() {
            continue;
        }
        // Group by destination, preserving key order.
        let mut by_dst: Vec<(u64, Vec<(u64, Element)>)> = Vec::new();
        for (k, e) in moved {
            let dst = driver.owner_of(elem_point(k));
            match by_dst.iter_mut().find(|d| d.0 == dst) {
                Some(d) => d.1.push((k, e)),
                None => by_dst.push((dst, vec![(k, e)])),
            }
        }
        for (dst, pairs) in by_dst {
            let id = home.start_move(NodeId(dst), pairs);
            started.push((src, id));
        }
    }
    started
}

/// Conservation + exactly-once scan. Panics on violation.
fn conservation_scan(sched: &SyncScheduler<StormNode>, expected: &[ElemId], round: u64) {
    let mut in_shards: Vec<ElemId> = Vec::with_capacity(expected.len());
    let mut buffered: Vec<ElemId> = Vec::new();
    for node in sched.nodes() {
        let home = node.app.inner();
        for (_, e) in home.shard.elements() {
            in_shards.push(e.id);
        }
        buffered.extend(home.buffered_elems());
    }
    in_shards.sort_unstable();
    assert!(
        in_shards.windows(2).all(|w| w[0] != w[1]),
        "round {round}: element duplicated across shards"
    );
    buffered.sort_unstable();
    for id in expected {
        let present = in_shards.binary_search(id).is_ok() || buffered.binary_search(id).is_ok();
        assert!(present, "round {round}: element {id} lost");
    }
}

/// The deterministic churn schedule: alternating crash/join, crash victims
/// drawn without replacement from founders that are up at schedule time.
fn schedule(cfg: &StormConfig, rng: &mut DetRng) -> Vec<ChurnEvent> {
    let mut events = Vec::new();
    let mut crashed: Vec<bool> = vec![false; cfg.n0];
    let mut next_spare = 0usize;
    let mut r = cfg.warmup;
    let mut flip = false;
    while r < cfg.rounds {
        let kind = if flip {
            ChurnKind::Join
        } else {
            ChurnKind::Crash
        };
        flip = !flip;
        match kind {
            ChurnKind::Crash => {
                let candidates: Vec<u64> = (0..cfg.n0 as u64)
                    .filter(|&v| !crashed[v as usize])
                    .collect();
                // Never storm away more than half the founders.
                if candidates.len() > cfg.n0 / 2 {
                    let node = *rng.pick(&candidates);
                    crashed[node as usize] = true;
                    events.push(ChurnEvent {
                        round: r,
                        kind,
                        node,
                        recover: r + cfg.down_for,
                    });
                }
            }
            ChurnKind::Join => {
                if next_spare < cfg.spares {
                    let node = (cfg.n0 + next_spare) as u64;
                    next_spare += 1;
                    events.push(ChurnEvent {
                        round: r,
                        kind,
                        node,
                        recover: r,
                    });
                }
            }
        }
        r += cfg.churn_every;
    }
    events
}

/// Run one churn storm. Panics on any oracle violation; returns the
/// measurement report otherwise.
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    let total = cfg.n0 + cfg.spares;
    let mut rng = DetRng::new(cfg.seed).split(0x57);
    let events = schedule(cfg, &mut rng);

    // Fault plan: uniform noise + the whole churn schedule as crash events.
    // A spare "joins" by recovering from a crash that began at round 0.
    let mut plan = FaultPlan::uniform(cfg.seed ^ 0xFA117, cfg.drop, cfg.dup);
    for ev in &events {
        plan = match ev.kind {
            ChurnKind::Crash => plan.with_crash(NodeId(ev.node), ev.round, Some(ev.recover)),
            ChurnKind::Join => plan.with_crash(NodeId(ev.node), 0, Some(ev.round)),
        };
    }
    // Spares never scheduled to join stay down for the whole run.
    let joining: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == ChurnKind::Join)
        .map(|e| e.node)
        .collect();
    for s in cfg.n0 as u64..total as u64 {
        if !joining.contains(&s) {
            plan = plan.with_crash(NodeId(s), 0, None);
        }
    }

    // Nodes: founders know the founding set; spares know a few seed contacts.
    let founders: Vec<NodeId> = (0..cfg.n0 as u64).map(NodeId).collect();
    let mut gcfg = cfg.gossip;
    gcfg.seed ^= cfg.seed;
    let nodes: Vec<StormNode> = (0..total as u64)
        .map(|i| {
            let peers: Vec<NodeId> = if (i as usize) < cfg.n0 {
                founders.clone()
            } else {
                let mut r = rng.split(0x5EED ^ i);
                (0..5).map(|_| NodeId(r.below(cfg.n0 as u64))).collect()
            };
            WithGossip::new(
                Reliable::new(HomeNode::default(), cfg.xfer_timeout),
                GossipNode::new(NodeId(i), &peers, gcfg),
            )
        })
        .collect();
    let mut sched = SyncScheduler::with_faults(nodes, plan);

    // Topology over the founders; members[k] = scheduler id of topo node k.
    let mut driver = Driver {
        topo: Topology::new(cfg.n0, cfg.seed ^ 0x7090),
        members: (0..cfg.n0 as u64).collect(),
        down: (0..total).map(|i| i >= cfg.n0).collect(),
    };

    // Seed elements directly into their owners' shards (initial condition).
    let m = cfg.n0 * cfg.elems_per_node;
    let mut expected: Vec<ElemId> = Vec::with_capacity(m);
    for key in 0..m as u64 {
        let owner = driver.owner_of(elem_point(key));
        let elem = Element::new(ElemId::compose(NodeId(0), key), Priority(key), 0);
        expected.push(elem.id);
        sched
            .node_mut(NodeId(owner))
            .app
            .inner_mut()
            .shard
            .ingest([(key, elem)]);
    }
    expected.sort_unstable();

    let mut report = StormReport {
        elements: m,
        ..StormReport::default()
    };
    let mut pending: Vec<PendingChurn> = Vec::new();
    let mut next_event = 0usize;
    let max_recover = events.iter().map(|e| e.recover).max().unwrap_or(0);
    let horizon = cfg.rounds.max(max_recover) + cfg.drain_max;

    let mut r = 0u64;
    loop {
        sched.step_round();
        r += 1;

        // 1. Fire scheduled churn events.
        while next_event < events.len() && events[next_event].round < r {
            let ev = events[next_event];
            next_event += 1;
            let rest = report.restorations.len();
            report.restorations.push(Restoration {
                kind: ev.kind,
                node: ev.node,
                at: ev.round,
                members_then: driver.members.len(),
                detect: None,
                quorum: None,
                spliced: None,
                settled: None,
                locate_hops: 0,
                rescinded: false,
            });
            match ev.kind {
                ChurnKind::Crash => {
                    report.crashes += 1;
                    driver.down[ev.node as usize] = true;
                }
                ChurnKind::Join => {
                    report.joins += 1;
                    driver.down[ev.node as usize] = false;
                }
            }
            pending.push(PendingChurn {
                rest,
                kind: ev.kind,
                node: ev.node,
                recover: ev.recover,
                spliced: false,
                rehomed: false,
                last_nudge: None,
                moves: Vec::new(),
            });
        }

        // 2. Recoveries: crashed nodes coming back this round.
        let mut rehome = false;
        for p in pending.iter_mut() {
            if p.kind == ChurnKind::Crash && p.recover == r {
                driver.down[p.node as usize] = false;
                if p.spliced {
                    // Evicted while away: new incarnation, re-home all.
                    sched.node_mut(NodeId(p.node)).gossip.rejoin();
                    p.rehomed = true;
                    rehome = true;
                }
            }
        }
        if rehome {
            let moves = rebalance(&mut sched, &driver);
            if let Some(p) = pending.iter_mut().rev().find(|p| p.rehomed) {
                p.moves.extend(moves);
            }
        }

        // 3. Poll protocol verdicts and splice on quorum.
        let up: Vec<u64> = driver.up_members().collect();
        let quorum_size =
            (((up.len().saturating_sub(1)) as f64 * cfg.quorum).ceil()).max(1.0) as usize;
        let mut splices: Vec<usize> = Vec::new();
        for (pi, p) in pending.iter_mut().enumerate() {
            if p.spliced {
                continue;
            }
            let target = NodeId(p.node);
            let voters = up.iter().filter(|&&v| v != p.node);
            let agreed = match p.kind {
                ChurnKind::Crash => voters
                    .filter(|&&v| sched.node(NodeId(v)).gossip.considers_dead(target))
                    .count(),
                ChurnKind::Join => voters
                    .filter(|&&v| sched.node(NodeId(v)).gossip.knows(target))
                    .count(),
            };
            let rest = &mut report.restorations[p.rest];
            if agreed > 0 && rest.detect.is_none() {
                rest.detect = Some(r);
            }
            if agreed >= quorum_size {
                if rest.quorum.is_none() {
                    rest.quorum = Some(r);
                }
                splices.push(pi);
            } else if p.kind == ChurnKind::Crash && !driver.down[p.node as usize] && r > p.recover {
                // Recovered before quorum: the event rescinds once every
                // voter's suspicion clears. Stragglers that already evicted
                // locally hold a tombstone at the old incarnation, which a
                // plain heartbeat cannot lift — nudge the victim to bump its
                // incarnation so they reconcile.
                if agreed == 0 {
                    rest.rescinded = true;
                    rest.settled = Some(r);
                    report.rescinded += 1;
                    p.spliced = true;
                    p.rehomed = true;
                } else if r >= p.recover + 16 && p.last_nudge.is_none_or(|t| r >= t + 32) {
                    sched.node_mut(target).gossip.rejoin();
                    p.last_nudge = Some(r);
                }
            }
        }
        for pi in splices {
            let p = &mut pending[pi];
            match p.kind {
                ChurnKind::Crash => {
                    let Some(pos) = driver.member_pos(p.node) else {
                        continue;
                    };
                    let (next, _) = membership::leave_at(&driver.topo, NodeId(pos as u64));
                    driver.topo = next;
                    driver.members.remove(pos);
                    report.evictions += 1;
                    if !driver.down[p.node as usize] {
                        report.fp_evictions += 1;
                    }
                }
                ChurnKind::Join => {
                    let label = membership::join_label(cfg.seed ^ 0x7090, p.node);
                    let (next, stats) = membership::join(&driver.topo, NodeId(0), label);
                    driver.topo = next;
                    driver.members.push(p.node);
                    report.join_splices += 1;
                    report.restorations[p.rest].locate_hops = stats.locate_hops;
                }
            }
            report.restorations[p.rest].spliced = Some(r);
            p.spliced = true;
            // A crash victim that was evicted while already back up re-homes
            // immediately; one still down re-homes at recovery (step 2).
            if p.kind == ChurnKind::Crash && !driver.down[p.node as usize] {
                sched.node_mut(NodeId(p.node)).gossip.rejoin();
                p.rehomed = true;
            }
            p.moves.extend(rebalance(&mut sched, &driver));
        }

        // 4. Settle: an event closes when its splice happened, its victim
        //    (if any) re-homed, and all its moves are acked.
        pending.retain_mut(|p| {
            if !p.spliced {
                return true;
            }
            if p.kind == ChurnKind::Crash && !p.rehomed {
                return true; // waiting for the victim's recovery
            }
            let busy = p
                .moves
                .iter()
                .any(|&(src, id)| sched.node(NodeId(src)).app.inner().move_in_flight(id));
            if busy {
                return true;
            }
            let rest = &mut report.restorations[p.rest];
            if rest.settled.is_none() {
                rest.settled = Some(r);
            }
            false
        });

        // 5. Oracles + periodic stray sweep (elements that landed at a node
        //    after the splice whose rebalance would have moved them).
        if r.is_multiple_of(cfg.oracle_every) {
            conservation_scan(&sched, &expected, r);
            report.oracle_scans += 1;
            rebalance(&mut sched, &driver);
        }

        // 6. Termination: all events fired and settled, all moves drained.
        if next_event == events.len() && pending.is_empty() {
            let drained = sched.nodes().iter().all(|n| n.app.done());
            if drained {
                break;
            }
        }
        assert!(
            r < horizon,
            "storm failed to settle within {horizon} rounds \
             ({} pending events, {} nodes not drained): {:?}",
            pending.len(),
            sched.nodes().iter().filter(|n| !n.app.done()).count(),
            pending
                .iter()
                .map(|p| (p.kind, p.node, p.spliced, p.rehomed, p.moves.len()))
                .collect::<Vec<_>>()
        );
    }

    // Final sweep to a fixed point, then the placement oracle.
    loop {
        let moves = rebalance(&mut sched, &driver);
        if moves.is_empty() {
            break;
        }
        let deadline = r + cfg.drain_max;
        while moves
            .iter()
            .any(|&(src, id)| sched.node(NodeId(src)).app.inner().move_in_flight(id))
        {
            sched.step_round();
            r += 1;
            assert!(r < deadline, "final sweep failed to drain");
        }
    }
    conservation_scan(&sched, &expected, r);
    report.oracle_scans += 1;
    for key in 0..m as u64 {
        let owner = driver.owner_of(elem_point(key));
        let held = sched
            .node(NodeId(owner))
            .app
            .inner()
            .shard
            .elements()
            .any(|(k, _)| k == key);
        assert!(held, "element {key} not at its final owner {owner}");
    }

    for node in sched.nodes() {
        let d = node.gossip.detector().stats();
        report.suspicions += d.suspicions;
        report.confirms += d.confirms;
        report.fp_suspicions += d.fp_suspicions;
        report.fp_confirms += d.fp_confirms;
    }
    report.rounds_run = r;
    report.members_final = driver.members.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;

    #[test]
    fn home_node_moves_elements_exactly_once() {
        let nodes: Vec<Reliable<HomeNode>> =
            Reliable::wrap_all((0..2).map(|_| HomeNode::default()), 8);
        let mut sched = SyncScheduler::new(nodes);
        let e = Element::new(ElemId::compose(NodeId(0), 1), Priority(1), 0);
        let id = sched
            .node_mut(NodeId(0))
            .inner_mut()
            .start_move(NodeId(1), vec![(5, e)]);
        let out = sched.run_until_quiescent(200);
        assert!(
            matches!(out, dpq_sim::RunOutcome::Quiescent { .. }),
            "{out:?}"
        );
        assert_eq!(sched.node(NodeId(1)).inner().shard.len(), 1);
        assert!(!sched.node(NodeId(0)).inner().move_in_flight(id));
    }

    fn quick_gossip(threshold: f64) -> GossipConfig {
        GossipConfig {
            window: 16,
            detector: DetectorConfig {
                threshold,
                confirm_ticks: 8,
                bootstrap_mean: 8.0,
            },
            evict_ticks: 8,
            ..GossipConfig::default()
        }
    }

    /// A miniature storm: small n, fast cadence, the full lifecycle —
    /// crash, detect, quorum, eviction splice, handover, recovery, rejoin,
    /// re-home — with the conservation oracles on throughout.
    #[test]
    fn mini_storm_conserves_and_restores() {
        let cfg = StormConfig {
            n0: 48,
            spares: 4,
            rounds: 320,
            churn_every: 40,
            warmup: 64,
            down_for: 200,
            gossip: quick_gossip(4.0),
            ..StormConfig::default()
        };
        let report = run_storm(&cfg);
        assert!(report.crashes >= 3, "crashes {}", report.crashes);
        assert!(report.joins >= 3, "joins {}", report.joins);
        // The detector must have driven at least one real eviction splice,
        // and every join must eventually splice.
        assert!(
            report.evictions + report.rescinded == report.crashes,
            "unaccounted crash: {report:?}"
        );
        assert!(report.evictions >= 1, "no detector-driven eviction");
        assert_eq!(report.join_splices, report.joins);
        // Every restoration closed its loop.
        assert!(report
            .restorations
            .iter()
            .all(|r| r.settled.is_some() || r.rescinded));
        // Quorum follows detection, splice follows quorum.
        for rest in report.restorations.iter().filter(|r| !r.rescinded) {
            assert!(rest.detect <= rest.quorum && rest.quorum <= rest.spliced);
        }
    }

    #[test]
    fn storm_is_deterministic() {
        let cfg = StormConfig {
            n0: 32,
            spares: 2,
            rounds: 160,
            churn_every: 48,
            warmup: 48,
            down_for: 140,
            gossip: quick_gossip(3.0),
            ..StormConfig::default()
        };
        let a = run_storm(&cfg);
        let b = run_storm(&cfg);
        assert_eq!(a.rounds_run, b.rounds_run);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.confirms, b.confirms);
        let sp = |r: &StormReport| -> Vec<Option<u64>> {
            r.restorations.iter().map(|x| x.spliced).collect()
        };
        assert_eq!(sp(&a), sp(&b));
    }
}
