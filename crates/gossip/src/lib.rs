//! Anti-entropy gossip membership with phi-accrual failure detection.
//!
//! The paper delegates Join()/Leave() to Skueue's splice procedure and
//! assumes somebody *notices* that a node is gone. This crate is that
//! somebody: a scuttlebutt-style membership layer in which every node
//! replicates a versioned key-value record per peer (digest → delta
//! exchanges over a rotating window, per-node max-version compaction), reads
//! heartbeat version progress as a liveness signal through a phi-accrual
//! detector, and walks dead peers through a suspicion → confirmation →
//! eviction lifecycle whose output *drives* the LDB splice and DHT handover
//! machinery — instead of a harness editing the membership vector by fiat.
//!
//! Layers:
//!
//! * [`state`] — the replicated KV state and its reconciliation algebra.
//! * [`phi`] — phi-accrual suspicion over heartbeat inter-arrival windows.
//! * [`detector`] — the lifecycle state machine, deadline-heap scheduled.
//! * [`proto`] — [`GossipNode`]: the above as an ordinary `Protocol`.
//! * [`combine`] — [`WithGossip`]: bolt membership onto any protocol node.
//! * [`storm`] — the churn-storm harness: thousands of nodes, continuous
//!   crash/join, detector-driven splices, conservation oracles.

pub mod combine;
pub mod detector;
pub mod phi;
pub mod proto;
pub mod state;
pub mod storm;

pub use combine::{SidecarMsg, WithGossip};
pub use detector::{DetectorConfig, DetectorStats, FailureDetector, Health, Verdict};
pub use phi::ArrivalWindow;
pub use proto::{GossipConfig, GossipMsg, GossipNode, GossipStats};
pub use state::{DigestEntry, GossipState, NodeDelta, K_HEARTBEAT};
pub use storm::{run_storm, ChurnKind, HomeNode, Restoration, StormConfig, StormReport, XferMsg};
