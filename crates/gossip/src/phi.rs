//! Phi-accrual suspicion over heartbeat inter-arrival times.
//!
//! Hayashibara et al.'s phi-accrual detector outputs a *suspicion level*
//! rather than a boolean: `phi(t) = -log10 P(next heartbeat arrives after
//! t)`. We model inter-arrival times with an exponential tail fitted to the
//! sampled mean — `P(T > t) = exp(-t/mean)` — giving the closed form
//! `phi(t) = t / (mean · ln 10)`. Crossing `phi = k` therefore means the
//! silence has lasted `k` times longer than `mean · ln 10 ≈ 2.30 · mean`,
//! and each unit of threshold multiplies the tolerated silence (and divides
//! the false-positive odds by 10, under the model).
//!
//! Time here is *logical* (scheduler rounds or runtime ticks) — the paper's
//! processes have no wall clocks, and neither does the simulator.

/// `1 / ln 10`: converts elapsed-over-mean into decimal digits of surprise.
const INV_LN10: f64 = std::f64::consts::LOG10_E;

/// Sliding window over the last few heartbeat inter-arrival intervals for
/// one peer.
#[derive(Debug, Clone)]
pub struct ArrivalWindow {
    /// Ring of recent intervals.
    ring: [u64; Self::CAP],
    len: usize,
    at: usize,
    sum: u64,
    /// Logical time of the most recent heartbeat observation.
    last: u64,
}

impl ArrivalWindow {
    /// Number of intervals retained; small so the detector adapts quickly
    /// when gossip pressure changes (e.g. membership growth stretches the
    /// mean inter-observation gap).
    pub const CAP: usize = 16;

    /// A window bootstrapped at `now` — the registration instant counts as
    /// the first observation so silence is measured from first contact.
    pub fn new(now: u64) -> Self {
        ArrivalWindow {
            ring: [0; Self::CAP],
            len: 0,
            at: 0,
            sum: 0,
            last: now,
        }
    }

    /// Record a heartbeat observation at `now`.
    pub fn observe(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last);
        self.last = now;
        if self.len == Self::CAP {
            self.sum -= self.ring[self.at];
        } else {
            self.len += 1;
        }
        self.ring[self.at] = dt;
        self.sum += dt;
        self.at = (self.at + 1) % Self::CAP;
    }

    /// Forget the elapsed silence without counting it as an interval — used
    /// when the *observer* was paused (crash-recover, long GC): the gap says
    /// nothing about the peer.
    pub fn rebase(&mut self, now: u64) {
        self.last = now;
    }

    /// Mean sampled interval, or `bootstrap` before enough samples exist.
    /// Clamped below by 1 so a burst of same-round observations cannot make
    /// every future silence look infinitely surprising.
    pub fn mean(&self, bootstrap: f64) -> f64 {
        if self.len < 2 {
            bootstrap.max(1.0)
        } else {
            (self.sum as f64 / self.len as f64).max(1.0)
        }
    }

    /// Suspicion level at `now`.
    pub fn phi(&self, now: u64, bootstrap: f64) -> f64 {
        let t = now.saturating_sub(self.last) as f64;
        t * INV_LN10 / self.mean(bootstrap)
    }

    /// Logical time of the last observation.
    pub fn last_seen(&self) -> u64 {
        self.last
    }

    /// Logical time at which `phi` will first reach `threshold` if the peer
    /// stays silent — the detector's re-check deadline.
    pub fn deadline(&self, threshold: f64, bootstrap: f64) -> u64 {
        let t = threshold * self.mean(bootstrap) / INV_LN10;
        self.last + (t.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_grows_linearly_with_silence() {
        let mut w = ArrivalWindow::new(0);
        for t in (10..=100).step_by(10) {
            w.observe(t);
        }
        // Mean interval is 10; phi at 23 rounds of silence ≈ 1 decimal digit.
        let p1 = w.phi(100 + 23, 8.0);
        assert!((p1 - 1.0).abs() < 0.05, "phi {p1}");
        let p2 = w.phi(100 + 46, 8.0);
        assert!((p2 - 2.0).abs() < 0.1, "phi {p2}");
        assert!(w.phi(100, 8.0) == 0.0);
    }

    #[test]
    fn bootstrap_mean_governs_until_samples_arrive() {
        let w = ArrivalWindow::new(0);
        // One (implicit) observation: bootstrap mean 4 → phi 1 at ~9.2.
        assert!(w.phi(4, 4.0) < 0.5);
        assert!(w.phi(40, 4.0) > 3.0);
    }

    #[test]
    fn deadline_matches_phi_crossing() {
        let mut w = ArrivalWindow::new(0);
        for t in (5..=50).step_by(5) {
            w.observe(t);
        }
        let d = w.deadline(3.0, 8.0);
        assert!(w.phi(d, 8.0) >= 3.0);
        assert!(w.phi(d - 2, 8.0) < 3.0);
    }

    #[test]
    fn rebase_swallows_the_gap() {
        let mut w = ArrivalWindow::new(0);
        for t in (5..=25).step_by(5) {
            w.observe(t);
        }
        w.rebase(1000);
        assert_eq!(w.phi(1000, 8.0), 0.0);
        // The gap did not pollute the sampled mean.
        assert!((w.mean(8.0) - 5.0).abs() < 0.01);
    }

    #[test]
    fn window_slides() {
        let mut w = ArrivalWindow::new(0);
        let mut t = 0;
        for _ in 0..ArrivalWindow::CAP {
            t += 100;
            w.observe(t);
        }
        // Now fill with fast intervals; the old slow ones age out.
        for _ in 0..ArrivalWindow::CAP {
            t += 2;
            w.observe(t);
        }
        assert!((w.mean(8.0) - 2.0).abs() < 0.01);
    }
}
