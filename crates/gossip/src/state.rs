//! Versioned per-node key-value state with anti-entropy reconciliation.
//!
//! Every node publishes a small key→value map about *itself*; gossip
//! replicates everyone's map everywhere. Each write bumps a per-node version
//! counter, so "what does peer B know about node X that I don't" compresses
//! to a single integer comparison: B's `max_version` for X against mine. A
//! digest is a list of `(node, incarnation, max_version)` triples; a delta
//! carries only entries whose version exceeds the digest's watermark —
//! per-node max-version compaction, scuttlebutt-style.
//!
//! Incarnations order *lifetimes*: a node that rejoins after being declared
//! dead bumps its incarnation, which outranks every version of the previous
//! life and voids eviction tombstones held against it.

use dpq_core::bitsize::tag_bits;
use dpq_core::{vlq_bits, BitSize, NodeId};

/// Well-known key: the heartbeat counter a node bumps every gossip round.
/// Version progress on this key is the liveness signal the failure detector
/// consumes.
pub const K_HEARTBEAT: u64 = 0;

/// One digest line: "for `node`'s life `incarnation` I have seen every write
/// up to `max_version`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestEntry {
    /// The node the line describes.
    pub node: NodeId,
    /// That node's lifetime counter as known to the digest's sender.
    pub incarnation: u64,
    /// Highest entry version seen for that lifetime.
    pub max_version: u64,
}

impl BitSize for DigestEntry {
    fn bits(&self) -> u64 {
        self.node.bits() + vlq_bits(self.incarnation) + vlq_bits(self.max_version)
    }
}

/// The writes one delta carries for one node: everything the recipient's
/// digest proved it was missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDelta {
    /// The node whose state the entries describe.
    pub node: NodeId,
    /// The lifetime the entries belong to.
    pub incarnation: u64,
    /// `(key, value, version)` triples, version-ascending.
    pub entries: Vec<(u64, u64, u64)>,
}

impl BitSize for NodeDelta {
    fn bits(&self) -> u64 {
        self.node.bits() + vlq_bits(self.incarnation) + self.entries.bits()
    }
}

/// What applying one [`NodeDelta`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The node was previously unknown (first discovery).
    pub discovered: bool,
    /// The node's `(incarnation, max_version)` advanced — a fresh sign of
    /// life the failure detector should observe.
    pub advanced: bool,
    /// The delta carried a *higher incarnation* than a local eviction
    /// tombstone — the node rejoined after being declared dead.
    pub rejoined: bool,
    /// Entries actually merged (stale ones are dropped silently).
    pub applied: u64,
}

/// Everything one node knows about one (other) node.
///
/// The heartbeat key is stored inline — it is the one key every record has
/// and the one the detector reads on every merge — so a record with no other
/// keys costs no heap allocation.
#[derive(Debug, Clone, Default)]
struct NodeRecord {
    incarnation: u64,
    hb_value: u64,
    hb_version: u64,
    /// Non-heartbeat keys, sorted by key: `(key, value, version)`.
    extra: Vec<(u64, u64, u64)>,
    max_version: u64,
}

impl NodeRecord {
    fn newer_than(&self, floor: u64, out: &mut Vec<(u64, u64, u64)>, budget: usize) {
        if self.hb_version > floor && out.len() < budget {
            out.push((K_HEARTBEAT, self.hb_value, self.hb_version));
        }
        for &(k, v, ver) in &self.extra {
            if ver > floor && out.len() < budget {
                out.push((k, v, ver));
            }
        }
    }

    fn merge(&mut self, key: u64, value: u64, version: u64) -> bool {
        if key == K_HEARTBEAT {
            if version > self.hb_version {
                self.hb_value = value;
                self.hb_version = version;
                self.max_version = self.max_version.max(version);
                return true;
            }
            return false;
        }
        match self.extra.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                if version > self.extra[i].2 {
                    self.extra[i] = (key, value, version);
                    self.max_version = self.max_version.max(version);
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.extra.insert(i, (key, value, version));
                self.max_version = self.max_version.max(version);
                true
            }
        }
    }
}

/// One node's replicated view of the whole membership's KV state.
#[derive(Debug, Clone)]
pub struct GossipState {
    me: NodeId,
    /// Sorted by node id.
    nodes: Vec<(NodeId, NodeRecord)>,
}

impl GossipState {
    /// A fresh view knowing only `me` (incarnation 0, no writes yet).
    pub fn new(me: NodeId) -> Self {
        GossipState {
            me,
            nodes: vec![(me, NodeRecord::default())],
        }
    }

    /// The owning node.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes this view has state for (including `me`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only `me` is known.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn idx(&self, node: NodeId) -> Option<usize> {
        self.nodes.binary_search_by_key(&node, |e| e.0).ok()
    }

    /// Is `node` present in the view?
    pub fn knows(&self, node: NodeId) -> bool {
        self.idx(node).is_some()
    }

    /// Node ids in the view, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|e| e.0)
    }

    /// The id at sorted position `i` — the rotation cursor of the digest
    /// window walks these positions.
    pub fn node_at(&self, i: usize) -> NodeId {
        self.nodes[i].0
    }

    /// Write a key on **my own** record, bumping my version.
    pub fn set(&mut self, key: u64, value: u64) {
        let i = self.idx(self.me).expect("own record always present");
        let rec = &mut self.nodes[i].1;
        let ver = rec.max_version + 1;
        rec.merge(key, value, ver);
    }

    /// Read `key` from `node`'s record.
    pub fn get(&self, node: NodeId, key: u64) -> Option<u64> {
        let rec = &self.nodes[self.idx(node)?].1;
        if key == K_HEARTBEAT {
            (rec.hb_version > 0).then_some(rec.hb_value)
        } else {
            rec.extra
                .binary_search_by_key(&key, |e| e.0)
                .ok()
                .map(|i| rec.extra[i].1)
        }
    }

    /// `(incarnation, max_version)` for `node` — the freshness watermark.
    pub fn freshness(&self, node: NodeId) -> Option<(u64, u64)> {
        self.idx(node)
            .map(|i| (self.nodes[i].1.incarnation, self.nodes[i].1.max_version))
    }

    /// Start a new lifetime for **my own** record: incarnation + 1, versions
    /// restart. Rejoin after eviction calls this; the higher incarnation
    /// outranks tombstones everywhere.
    pub fn bump_incarnation(&mut self) {
        let i = self.idx(self.me).expect("own record always present");
        let rec = &mut self.nodes[i].1;
        let inc = rec.incarnation + 1;
        let hb = rec.hb_value;
        *rec = NodeRecord {
            incarnation: inc,
            ..NodeRecord::default()
        };
        // Re-publish the heartbeat immediately so the new life is visible.
        rec.merge(K_HEARTBEAT, hb + 1, 1);
    }

    /// My digest line for `node` (`None` if unknown).
    pub fn digest_entry(&self, node: NodeId) -> Option<DigestEntry> {
        self.idx(node).map(|i| DigestEntry {
            node,
            incarnation: self.nodes[i].1.incarnation,
            max_version: self.nodes[i].1.max_version,
        })
    }

    /// Everything I know that the digest's sender provably lacks, capped at
    /// `budget` entries total. `skip` filters nodes I refuse to gossip about
    /// (eviction tombstones).
    pub fn delta_for(
        &self,
        digest: &[DigestEntry],
        budget: usize,
        mut skip: impl FnMut(NodeId) -> bool,
    ) -> Vec<NodeDelta> {
        let mut out = Vec::new();
        let mut spent = 0usize;
        for d in digest {
            if spent >= budget || skip(d.node) {
                continue;
            }
            let Some(i) = self.idx(d.node) else { continue };
            let rec = &self.nodes[i].1;
            let floor = match rec.incarnation.cmp(&d.incarnation) {
                std::cmp::Ordering::Greater => 0, // new life: send everything
                std::cmp::Ordering::Equal if rec.max_version > d.max_version => d.max_version,
                _ => continue,
            };
            let mut entries = Vec::new();
            rec.newer_than(floor, &mut entries, budget - spent);
            if !entries.is_empty() {
                spent += entries.len();
                out.push(NodeDelta {
                    node: d.node,
                    incarnation: rec.incarnation,
                    entries,
                });
            }
        }
        out
    }

    /// The digest lines where the *sender* knows more than I do — what I
    /// should ask it for. Unknown nodes come back as `(inc, 0)` watermarks.
    /// `skip` suppresses asking about nodes I hold a tombstone for **at or
    /// above** the advertised incarnation.
    pub fn wants(
        &self,
        digest: &[DigestEntry],
        mut skip: impl FnMut(NodeId, u64) -> bool,
    ) -> Vec<DigestEntry> {
        let mut out = Vec::new();
        for d in digest {
            if skip(d.node, d.incarnation) {
                continue;
            }
            let mine = self.freshness(d.node).unwrap_or((0, 0));
            let theirs = (d.incarnation, d.max_version);
            let unknown = self.idx(d.node).is_none();
            if unknown || theirs > mine {
                out.push(DigestEntry {
                    node: d.node,
                    incarnation: if unknown { 0 } else { mine.0 },
                    max_version: if unknown { 0 } else { mine.1 },
                });
            }
        }
        out
    }

    /// Merge one node's delta. Stale incarnations are rejected wholesale;
    /// within the current incarnation, per-key versions decide.
    pub fn apply(&mut self, nd: &NodeDelta) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        let i = match self.nodes.binary_search_by_key(&nd.node, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                if nd.node == self.me {
                    return out; // never let peers rewrite my own record
                }
                self.nodes.insert(i, (nd.node, NodeRecord::default()));
                out.discovered = true;
                i
            }
        };
        if nd.node == self.me {
            // Gossip echoes of my own state can never outrank my local
            // writes within my current life; a *higher* incarnation echo
            // would mean a split-brain duplicate id — reject it too.
            return out;
        }
        let rec = &mut self.nodes[i].1;
        let before = (rec.incarnation, rec.max_version);
        if nd.incarnation < rec.incarnation {
            return out;
        }
        if nd.incarnation > rec.incarnation {
            *rec = NodeRecord {
                incarnation: nd.incarnation,
                ..NodeRecord::default()
            };
        }
        for &(k, v, ver) in &nd.entries {
            if rec.merge(k, v, ver) {
                out.applied += 1;
            }
        }
        out.advanced = (rec.incarnation, rec.max_version) > before;
        out
    }

    /// Drop `node`'s record entirely (eviction executes this; a tombstone in
    /// the caller stops it from flowing back in).
    pub fn forget(&mut self, node: NodeId) {
        if node == self.me {
            return;
        }
        if let Some(i) = self.idx(node) {
            self.nodes.remove(i);
        }
    }
}

impl dpq_core::StateHash for GossipState {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        h.write_u64(self.me.0);
        h.write_u64(self.nodes.len() as u64);
        for (id, rec) in &self.nodes {
            h.write_u64(id.0);
            h.write_u64(rec.incarnation);
            h.write_u64(rec.hb_value);
            h.write_u64(rec.hb_version);
            h.write_u64(rec.max_version);
            for &(k, v, ver) in &rec.extra {
                h.write_u64(k);
                h.write_u64(v);
                h.write_u64(ver);
            }
        }
    }
}

/// Tag cost helper shared by the message enum.
pub(crate) fn gossip_tag_bits() -> u64 {
    tag_bits(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(s: &GossipState, nodes: &[u64]) -> Vec<DigestEntry> {
        nodes
            .iter()
            .filter_map(|&n| s.digest_entry(NodeId(n)))
            .collect()
    }

    #[test]
    fn set_bumps_versions_monotonically() {
        let mut s = GossipState::new(NodeId(1));
        s.set(K_HEARTBEAT, 10);
        s.set(K_HEARTBEAT, 11);
        s.set(7, 99);
        assert_eq!(s.get(NodeId(1), K_HEARTBEAT), Some(11));
        assert_eq!(s.get(NodeId(1), 7), Some(99));
        assert_eq!(s.freshness(NodeId(1)), Some((0, 3)));
    }

    #[test]
    fn delta_carries_only_missing_entries() {
        let mut a = GossipState::new(NodeId(0));
        a.set(K_HEARTBEAT, 1);
        a.set(5, 50);
        let mut b = GossipState::new(NodeId(1));
        // b asks with a zero watermark for node 0.
        let want = vec![DigestEntry {
            node: NodeId(0),
            incarnation: 0,
            max_version: 0,
        }];
        let delta = a.delta_for(&want, 64, |_| false);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].entries.len(), 2);
        for nd in &delta {
            b.apply(nd);
        }
        assert_eq!(b.get(NodeId(0), 5), Some(50));
        // Now b is caught up: same digest produces an empty delta.
        let caught_up = digest_of(&b, &[0]);
        assert!(a.delta_for(&caught_up, 64, |_| false).is_empty());
    }

    #[test]
    fn apply_reports_advancement_and_discovery() {
        let mut a = GossipState::new(NodeId(0));
        a.set(K_HEARTBEAT, 1);
        let delta = a.delta_for(
            &[DigestEntry {
                node: NodeId(0),
                incarnation: 0,
                max_version: 0,
            }],
            64,
            |_| false,
        );
        let mut b = GossipState::new(NodeId(1));
        let out = b.apply(&delta[0]);
        assert!(out.discovered && out.advanced);
        assert_eq!(out.applied, 1);
        // Replaying the same delta is a no-op.
        let again = b.apply(&delta[0]);
        assert!(!again.discovered && !again.advanced);
        assert_eq!(again.applied, 0);
    }

    #[test]
    fn higher_incarnation_resets_the_record() {
        let mut a = GossipState::new(NodeId(0));
        a.set(K_HEARTBEAT, 1);
        a.set(9, 90);
        let mut b = GossipState::new(NodeId(1));
        for nd in a.delta_for(
            &[DigestEntry {
                node: NodeId(0),
                incarnation: 0,
                max_version: 0,
            }],
            64,
            |_| false,
        ) {
            b.apply(&nd);
        }
        assert_eq!(b.get(NodeId(0), 9), Some(90));
        a.bump_incarnation();
        let nd = NodeDelta {
            node: NodeId(0),
            incarnation: 1,
            entries: vec![(K_HEARTBEAT, 2, 1)],
        };
        let out = b.apply(&nd);
        assert!(out.advanced);
        // The old life's keys are gone.
        assert_eq!(b.get(NodeId(0), 9), None);
        assert_eq!(b.freshness(NodeId(0)), Some((1, 1)));
        // Stale writes from the old incarnation are rejected wholesale.
        let stale = NodeDelta {
            node: NodeId(0),
            incarnation: 0,
            entries: vec![(9, 91, 50)],
        };
        let res = b.apply(&stale);
        assert_eq!(res.applied, 0);
        assert_eq!(b.get(NodeId(0), 9), None);
    }

    #[test]
    fn wants_flags_unknown_and_stale_nodes() {
        let mut a = GossipState::new(NodeId(0));
        a.set(K_HEARTBEAT, 1);
        let b = GossipState::new(NodeId(1));
        let digest = digest_of(&a, &[0]);
        let wants = b.wants(&digest, |_, _| false);
        assert_eq!(wants.len(), 1);
        assert_eq!(wants[0].max_version, 0);
        // A tombstone suppresses the want.
        let none = b.wants(&digest, |n, inc| n == NodeId(0) && inc == 0);
        assert!(none.is_empty());
    }

    #[test]
    fn own_record_resists_echoes() {
        let mut a = GossipState::new(NodeId(0));
        a.set(K_HEARTBEAT, 5);
        let echo = NodeDelta {
            node: NodeId(0),
            incarnation: 0,
            entries: vec![(K_HEARTBEAT, 999, 40)],
        };
        a.apply(&echo);
        assert_eq!(a.get(NodeId(0), K_HEARTBEAT), Some(5));
    }

    #[test]
    fn forget_removes_and_budget_caps() {
        let mut a = GossipState::new(NodeId(0));
        for k in 1..10 {
            a.set(k, k);
        }
        let d = a.delta_for(
            &[DigestEntry {
                node: NodeId(0),
                incarnation: 0,
                max_version: 0,
            }],
            4,
            |_| false,
        );
        assert_eq!(d[0].entries.len(), 4);
        let mut b = GossipState::new(NodeId(1));
        b.apply(&d[0]);
        assert!(b.knows(NodeId(0)));
        b.forget(NodeId(0));
        assert!(!b.knows(NodeId(0)));
    }
}
