//! The suspicion → confirmation lifecycle over phi-accrual windows.
//!
//! Each peer carries an [`ArrivalWindow`]; the detector turns phi crossings
//! into state transitions:
//!
//! * **Alive** — phi below threshold.
//! * **Suspect** — phi crossed the threshold at `since`; any heartbeat
//!   progress cancels the suspicion (and counts a false positive).
//! * **Confirmed** — phi stayed above threshold for `confirm_ticks` after
//!   `since`; the peer is considered dead. Heartbeat progress still revives
//!   it (a *confirmed* false positive), because fail-pause nodes can return.
//!
//! Eviction itself — dropping the peer and tombstoning its incarnation — is
//! the caller's move ([`crate::proto::GossipNode`]); the detector only
//! renders verdicts.
//!
//! Scanning every peer every tick would cost O(n) per node per round —
//! O(n²) per simulated round, fatal at storm scale. Instead every peer has a
//! *deadline*: the logical time its phi first crosses the threshold if it
//! stays silent. Deadlines sit in a lazy min-heap; a tick only pops due
//! entries and re-validates them against the live window (observations make
//! heap entries stale; stale pops are re-armed, not trusted).

use crate::phi::ArrivalWindow;
use dpq_core::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Suspicion threshold: phi at which Alive → Suspect.
    pub threshold: f64,
    /// Ticks a suspicion must survive before it hardens into Confirmed.
    pub confirm_ticks: u64,
    /// Assumed mean inter-arrival before two real samples exist.
    pub bootstrap_mean: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold: 8.0,
            confirm_ticks: 16,
            bootstrap_mean: 32.0,
        }
    }
}

/// A peer's detector verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Heartbeats flowing.
    Alive,
    /// Phi crossed the threshold at the contained tick.
    Suspect {
        /// When suspicion began.
        since: u64,
    },
    /// Suspicion survived the confirmation delay: considered dead.
    Confirmed {
        /// When suspicion began (eviction latency is measured from here).
        since: u64,
        /// When the suspicion hardened.
        at: u64,
    },
}

/// A state transition surfaced by [`FailureDetector::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Alive → Suspect.
    Suspected(NodeId),
    /// Suspect → Confirmed; carries `since` for latency accounting.
    Confirmed(NodeId, u64),
    /// Suspect/Confirmed → Alive on heartbeat progress (a false positive).
    Revived(NodeId),
}

/// Lifecycle counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Alive → Suspect transitions.
    pub suspicions: u64,
    /// Suspect → Confirmed transitions.
    pub confirms: u64,
    /// Suspicions cancelled by a live heartbeat.
    pub fp_suspicions: u64,
    /// Confirmations cancelled by a live heartbeat — the detector declared
    /// dead a node that was merely slow or partitioned.
    pub fp_confirms: u64,
}

#[derive(Debug, Clone)]
struct PeerRecord {
    window: ArrivalWindow,
    health: Health,
    /// Bumped on every observation; heap entries carry the stamp they were
    /// armed at, so a pop can tell whether it is stale.
    stamp: u64,
}

/// Phi-accrual failure detector over a set of peers.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    /// Sorted by node id.
    peers: Vec<(NodeId, PeerRecord)>,
    /// `(deadline, node, stamp)` lazy min-heap.
    deadlines: BinaryHeap<Reverse<(u64, NodeId, u64)>>,
    stats: DetectorStats,
}

impl FailureDetector {
    /// A detector with no peers yet.
    pub fn new(cfg: DetectorConfig) -> Self {
        FailureDetector {
            cfg,
            peers: Vec::new(),
            deadlines: BinaryHeap::new(),
            stats: DetectorStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Cumulative lifecycle counters.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Number of tracked peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// No peers tracked.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    fn idx(&self, peer: NodeId) -> Option<usize> {
        self.peers.binary_search_by_key(&peer, |e| e.0).ok()
    }

    fn arm(&mut self, peer: NodeId, deadline: u64, stamp: u64) {
        self.deadlines.push(Reverse((deadline, peer, stamp)));
    }

    /// Start tracking `peer`, treating `now` as first contact. No-op if
    /// already tracked.
    pub fn register(&mut self, peer: NodeId, now: u64) {
        if let Err(i) = self.peers.binary_search_by_key(&peer, |e| e.0) {
            let rec = PeerRecord {
                window: ArrivalWindow::new(now),
                health: Health::Alive,
                stamp: 0,
            };
            let deadline = rec
                .window
                .deadline(self.cfg.threshold, self.cfg.bootstrap_mean);
            self.peers.insert(i, (peer, rec));
            self.arm(peer, deadline, 0);
        }
    }

    /// Stop tracking `peer` (eviction executed, or peer left cleanly).
    pub fn forget(&mut self, peer: NodeId) {
        if let Some(i) = self.idx(peer) {
            self.peers.remove(i);
        }
        // Heap entries for the peer die lazily on pop.
    }

    /// Heartbeat progress for `peer` at `now`. Returns `Some(Verdict::
    /// Revived)` when this cancels a suspicion or confirmation.
    pub fn observe(&mut self, peer: NodeId, now: u64) -> Option<Verdict> {
        let threshold = self.cfg.threshold;
        let bootstrap = self.cfg.bootstrap_mean;
        let i = self.idx(peer)?;
        let rec = &mut self.peers[i].1;
        rec.window.observe(now);
        rec.stamp += 1;
        let stamp = rec.stamp;
        let deadline = rec.window.deadline(threshold, bootstrap);
        let was = rec.health;
        rec.health = Health::Alive;
        self.arm(peer, deadline, stamp);
        match was {
            Health::Alive => None,
            Health::Suspect { .. } => {
                self.stats.fp_suspicions += 1;
                Some(Verdict::Revived(peer))
            }
            Health::Confirmed { .. } => {
                self.stats.fp_confirms += 1;
                Some(Verdict::Revived(peer))
            }
        }
    }

    /// The observer itself was paused: swallow the silence for every peer
    /// instead of suspecting the whole world at once.
    pub fn rebase_all(&mut self, now: u64) {
        let threshold = self.cfg.threshold;
        let bootstrap = self.cfg.bootstrap_mean;
        let mut rearm = Vec::with_capacity(self.peers.len());
        for (peer, rec) in &mut self.peers {
            rec.window.rebase(now);
            rec.stamp += 1;
            rec.health = Health::Alive;
            rearm.push((*peer, rec.window.deadline(threshold, bootstrap), rec.stamp));
        }
        for (peer, deadline, stamp) in rearm {
            self.arm(peer, deadline, stamp);
        }
    }

    /// Advance the detector clock, surfacing transitions due at `now`.
    pub fn tick(&mut self, now: u64, out: &mut Vec<Verdict>) {
        while let Some(&Reverse((deadline, peer, stamp))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            let Some(i) = self.idx(peer) else { continue };
            let threshold = self.cfg.threshold;
            let bootstrap = self.cfg.bootstrap_mean;
            let confirm = self.cfg.confirm_ticks;
            let rec = &mut self.peers[i].1;
            if rec.stamp != stamp {
                continue; // observation outran this deadline
            }
            match rec.health {
                Health::Alive => {
                    if rec.window.phi(now, bootstrap) >= threshold {
                        rec.health = Health::Suspect { since: now };
                        rec.stamp += 1;
                        let s = rec.stamp;
                        self.stats.suspicions += 1;
                        out.push(Verdict::Suspected(peer));
                        self.arm(peer, now + confirm, s);
                    } else {
                        // Deadline computed from an older mean; re-arm.
                        rec.stamp += 1;
                        let s = rec.stamp;
                        let d = rec.window.deadline(threshold, bootstrap).max(now + 1);
                        self.arm(peer, d, s);
                    }
                }
                Health::Suspect { since } => {
                    if rec.window.phi(now, bootstrap) >= threshold {
                        rec.health = Health::Confirmed { since, at: now };
                        rec.stamp += 1;
                        self.stats.confirms += 1;
                        out.push(Verdict::Confirmed(peer, since));
                    } else {
                        // Mean drifted; drop back without counting an FP
                        // (no observation arrived — phi math simply moved).
                        rec.health = Health::Alive;
                        rec.stamp += 1;
                        let s = rec.stamp;
                        let d = rec.window.deadline(threshold, bootstrap).max(now + 1);
                        self.arm(peer, d, s);
                    }
                }
                Health::Confirmed { .. } => {}
            }
        }
    }

    /// Current verdict for `peer` (`None` when untracked).
    pub fn health(&self, peer: NodeId) -> Option<Health> {
        self.idx(peer).map(|i| self.peers[i].1.health)
    }

    /// Current phi for `peer`.
    pub fn phi(&self, peer: NodeId, now: u64) -> Option<f64> {
        self.idx(peer)
            .map(|i| self.peers[i].1.window.phi(now, self.cfg.bootstrap_mean))
    }

    /// Peers currently Confirmed dead, with their suspicion start times.
    pub fn confirmed(&self) -> impl Iterator<Item = (NodeId, u64, u64)> + '_ {
        self.peers.iter().filter_map(|(p, r)| match r.health {
            Health::Confirmed { since, at } => Some((*p, since, at)),
            _ => None,
        })
    }

    /// Tracked peers and their verdicts, ascending by id.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, Health)> + '_ {
        self.peers.iter().map(|(p, r)| (*p, r.health))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            threshold: 3.0,
            confirm_ticks: 5,
            bootstrap_mean: 8.0,
        }
    }

    fn drive(d: &mut FailureDetector, peer: NodeId, upto: u64, every: u64, out: &mut Vec<Verdict>) {
        let mut t = 0;
        while t < upto {
            t += 1;
            if every > 0 && t % every == 0 {
                d.observe(peer, t);
            }
            d.tick(t, out);
        }
    }

    #[test]
    fn steady_heartbeats_stay_alive() {
        let mut d = FailureDetector::new(cfg());
        d.register(NodeId(1), 0);
        let mut out = Vec::new();
        drive(&mut d, NodeId(1), 500, 4, &mut out);
        assert!(out.is_empty(), "verdicts: {out:?}");
        assert_eq!(d.health(NodeId(1)), Some(Health::Alive));
        assert_eq!(d.stats().suspicions, 0);
    }

    #[test]
    fn silence_suspects_then_confirms() {
        let mut d = FailureDetector::new(cfg());
        d.register(NodeId(1), 0);
        let mut out = Vec::new();
        // Heartbeats every 4 ticks until t=100, then silence.
        drive(&mut d, NodeId(1), 100, 4, &mut out);
        assert!(out.is_empty());
        let mut t = 100;
        while t < 300 {
            t += 1;
            d.tick(t, &mut out);
        }
        assert!(matches!(out[0], Verdict::Suspected(NodeId(1))), "{out:?}");
        assert!(
            matches!(out[1], Verdict::Confirmed(NodeId(1), _)),
            "{out:?}"
        );
        // phi=3 with mean 4 crosses at ~28 ticks of silence; confirm 5 later.
        let Health::Confirmed { since, at } = d.health(NodeId(1)).unwrap() else {
            panic!("not confirmed");
        };
        assert!((125..=135).contains(&since), "since {since}");
        assert_eq!(at, since + 5);
        assert_eq!(d.stats().confirms, 1);
    }

    #[test]
    fn late_heartbeat_revives_and_counts_fp() {
        let mut d = FailureDetector::new(cfg());
        d.register(NodeId(1), 0);
        let mut out = Vec::new();
        drive(&mut d, NodeId(1), 100, 4, &mut out);
        // Silence long enough to confirm, then a heartbeat returns.
        let mut t = 100;
        while t < 250 {
            t += 1;
            d.tick(t, &mut out);
        }
        assert_eq!(d.stats().confirms, 1);
        let v = d.observe(NodeId(1), 251);
        assert_eq!(v, Some(Verdict::Revived(NodeId(1))));
        assert_eq!(d.health(NodeId(1)), Some(Health::Alive));
        assert_eq!(d.stats().fp_confirms, 1);
        // And it can be re-suspected later.
        out.clear();
        let mut t = 251;
        while t < 500 {
            t += 1;
            d.tick(t, &mut out);
        }
        assert!(out
            .iter()
            .any(|v| matches!(v, Verdict::Suspected(NodeId(1)))));
    }

    #[test]
    fn rebase_prevents_mass_suspicion_after_observer_pause() {
        let mut d = FailureDetector::new(cfg());
        for p in 1..=5 {
            d.register(NodeId(p), 0);
        }
        let mut out = Vec::new();
        for t in 1..=40 {
            if t % 4 == 0 {
                for p in 1..=5 {
                    d.observe(NodeId(p), t);
                }
            }
            d.tick(t, &mut out);
        }
        // Observer paused until t=1000; rebase instead of ticking across.
        d.rebase_all(1000);
        d.tick(1000, &mut out);
        d.tick(1001, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!((1..=5).all(|p| d.health(NodeId(p)) == Some(Health::Alive)));
    }

    #[test]
    fn forget_drops_the_peer() {
        let mut d = FailureDetector::new(cfg());
        d.register(NodeId(1), 0);
        d.forget(NodeId(1));
        assert!(d.health(NodeId(1)).is_none());
        let mut out = Vec::new();
        // Stale heap entries must not panic or resurrect the peer.
        for t in 1..200 {
            d.tick(t, &mut out);
        }
        assert!(out.is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn faster_cadence_tightens_detection_latency() {
        // The adaptive property: detection latency tracks the observed
        // cadence, not a fixed timeout.
        let mut latency = Vec::new();
        for every in [2u64, 8] {
            let mut d = FailureDetector::new(cfg());
            d.register(NodeId(1), 0);
            let mut out = Vec::new();
            drive(&mut d, NodeId(1), 200, every, &mut out);
            let mut t = 200;
            while d.stats().confirms == 0 && t < 2000 {
                t += 1;
                d.tick(t, &mut out);
            }
            latency.push(t - 200);
        }
        assert!(
            latency[0] * 2 < latency[1],
            "fast cadence {} vs slow {}",
            latency[0],
            latency[1]
        );
    }
}
