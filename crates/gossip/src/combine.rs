//! Run gossip membership *beside* any existing protocol.
//!
//! [`WithGossip<P>`] multiplexes a [`GossipNode`] and an unmodified inner
//! protocol over one message alphabet, so Skeap, Seap, the DHT, or a
//! `Reliable<…>` stack gains a failure detector without touching a line of
//! its code — and every scheduler feature (fault plans, tracing, the model
//! checker's delivery policies) applies to the combined node unchanged.

use crate::proto::{GossipMsg, GossipNode};
use dpq_core::bitsize::tag_bits;
use dpq_core::{BitSize, MsgKind, NodeId};
use dpq_sim::{Ctx, CtxEvent, Protocol};

/// Either an application message or a gossip frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidecarMsg<M> {
    /// The inner protocol's traffic.
    App(M),
    /// Membership traffic.
    Gossip(GossipMsg),
}

impl<M: BitSize> BitSize for SidecarMsg<M> {
    fn bits(&self) -> u64 {
        tag_bits(2)
            + match self {
                SidecarMsg::App(m) => m.bits(),
                SidecarMsg::Gossip(g) => g.bits(),
            }
    }

    fn kind(&self) -> MsgKind {
        match self {
            SidecarMsg::App(m) => m.kind(),
            SidecarMsg::Gossip(g) => g.kind(),
        }
    }
}

/// A protocol node with a gossip membership sidecar.
#[derive(Debug, Clone)]
pub struct WithGossip<P: Protocol> {
    /// The unmodified application node.
    pub app: P,
    /// The membership sidecar.
    pub gossip: GossipNode,
}

impl<P: Protocol> WithGossip<P> {
    /// Pair `app` with a gossip sidecar.
    pub fn new(app: P, gossip: GossipNode) -> Self {
        WithGossip { app, gossip }
    }

    /// Run a closure over a sub-protocol under its own context, then remap
    /// its sends through `wrap` and replay its telemetry notes.
    fn run_sub<N: BitSize>(
        ctx: &mut Ctx<SidecarMsg<P::Msg>>,
        wrap: impl Fn(N) -> SidecarMsg<P::Msg>,
        f: impl FnOnce(&mut Ctx<N>),
    ) {
        let mut sub = Ctx::new(ctx.me(), ctx.now());
        f(&mut sub);
        for env in sub.take_outbox() {
            ctx.send(env.dst, wrap(env.msg));
        }
        for ev in sub.drain_events() {
            match ev {
                CtxEvent::Phase { label, value } => ctx.phase_mark(label, value),
                CtxEvent::OpDone { op } => ctx.op_completed(op),
            }
        }
    }
}

impl<P: Protocol> Protocol for WithGossip<P> {
    type Msg = SidecarMsg<P::Msg>;

    fn on_activate(&mut self, ctx: &mut Ctx<Self::Msg>) {
        let app = &mut self.app;
        Self::run_sub(ctx, SidecarMsg::App, |sub| app.on_activate(sub));
        let gossip = &mut self.gossip;
        Self::run_sub(ctx, SidecarMsg::Gossip, |sub| gossip.on_activate(sub));
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>) {
        match msg {
            SidecarMsg::App(m) => {
                let app = &mut self.app;
                Self::run_sub(ctx, SidecarMsg::App, |sub| app.on_message(from, m, sub));
            }
            SidecarMsg::Gossip(g) => {
                let gossip = &mut self.gossip;
                Self::run_sub(ctx, SidecarMsg::Gossip, |sub| {
                    gossip.on_message(from, g, sub)
                });
            }
        }
    }

    /// Quiescence is the application's call; gossip is perpetual soft state.
    fn done(&self) -> bool {
        self.app.done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::GossipConfig;
    use dpq_core::vlq_bits;

    /// Tiny echo protocol for the combinator plumbing tests.
    struct Echo {
        me: NodeId,
        got: Vec<u64>,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn on_activate(&mut self, ctx: &mut Ctx<u64>) {
            if self.me == NodeId(0) && ctx.now() == 0 {
                ctx.send(NodeId(1), 42);
                ctx.phase_mark("echo.sent", 1);
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            self.got.push(msg);
            ctx.phase_mark("echo.got", msg);
        }
    }

    fn pair() -> Vec<WithGossip<Echo>> {
        let peers = [NodeId(0), NodeId(1)];
        (0..2u64)
            .map(|i| {
                WithGossip::new(
                    Echo {
                        me: NodeId(i),
                        got: Vec::new(),
                    },
                    GossipNode::new(NodeId(i), &peers, GossipConfig::default()),
                )
            })
            .collect()
    }

    #[test]
    fn app_and_gossip_traffic_multiplex() {
        let mut sched = dpq_sim::SyncScheduler::new(pair());
        for _ in 0..6 {
            sched.step_round();
        }
        assert_eq!(sched.node(NodeId(1)).app.got, vec![42]);
        // Gossip ran beside the app: both sides exchanged Syns.
        assert!(sched.node(NodeId(0)).gossip.stats.syn_tx > 0);
        assert!(sched.node(NodeId(1)).gossip.stats.syn_rx > 0);
        // And replicated each other's heartbeats.
        assert!(sched
            .node(NodeId(0))
            .gossip
            .heartbeat_of(NodeId(1))
            .is_some());
    }

    #[test]
    fn sidecar_msg_bits_and_kinds_delegate() {
        let app: SidecarMsg<u64> = SidecarMsg::App(7);
        assert_eq!(app.bits(), 1 + vlq_bits(7));
        assert_eq!(app.kind(), MsgKind::OTHER);
        let gsp: SidecarMsg<u64> = SidecarMsg::Gossip(GossipMsg::Ack { delta: Vec::new() });
        assert_eq!(gsp.kind(), MsgKind("gossip.ack"));
    }

    #[test]
    fn phase_marks_survive_the_wrapper() {
        use dpq_sim::{TraceEvent, VecTracer};
        let mut sched = dpq_sim::SyncScheduler::with_tracer(pair(), VecTracer::new());
        for _ in 0..3 {
            sched.step_round();
        }
        let marks: Vec<_> = sched
            .tracer
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PhaseMark { .. }))
            .collect();
        assert!(!marks.is_empty(), "inner phase marks were swallowed");
    }
}
