//! Release-tier churn storms. Both tests are `#[ignore]`d: they are minutes
//! of work in debug builds and are meant to run under
//! `cargo test --release -- --ignored` (the `churn` tier of
//! `scripts/check.sh` runs the bounded one; the full-scale storm is the
//! headline robustness demonstration and runs on demand).
//!
//! Every round of every storm is under the conservation oracle — `run_storm`
//! panics on any element lost, duplicated, or fabricated, on any
//! false-positive eviction splice, and on any unsettled restoration — so a
//! green test IS the robustness claim.

use dpq_gossip::{run_storm, DetectorConfig, GossipConfig, StormConfig, StormReport};

/// Detector tuning for large storms: at n in the thousands a fixed peer's
/// heartbeat advances every O(window-rotation) rounds, so thresholds sit
/// lower than the socket daemon's (where every tick carries heartbeats).
fn storm_gossip(threshold: f64) -> GossipConfig {
    GossipConfig {
        window: 0, // adaptive: max(16, known/16)
        detector: DetectorConfig {
            threshold,
            confirm_ticks: 8,
            bootstrap_mean: 8.0,
        },
        evict_ticks: 8,
        ..GossipConfig::default()
    }
}

fn assert_storm_invariants(report: &StormReport, cfg: &StormConfig) {
    // Churn actually stormed: one event every `churn_every` rounds.
    let expected_events = (cfg.rounds - cfg.warmup) / cfg.churn_every;
    assert!(
        report.crashes + report.joins >= expected_events * 9 / 10,
        "schedule under-delivered: {} crashes + {} joins for ~{expected_events} slots",
        report.crashes,
        report.joins,
    );
    // Every crash is accounted for: evicted by the detector or rescinded by
    // an early recovery — and the storm is only interesting if detection
    // usually wins the race against recovery.
    assert_eq!(
        report.evictions + report.rescinded,
        report.crashes,
        "unaccounted crashes"
    );
    assert!(
        report.evictions >= report.rescinded,
        "recoveries beat the detector {} to {} — detection too slow for down_for={}",
        report.rescinded,
        report.evictions,
        cfg.down_for,
    );
    // Splices against an already-recovered node (quorum landing inside the
    // recovery lag window) must stay rare. The run_storm oracles already
    // proved the system absorbs them — rejoin, re-home, nothing lost — so
    // the assertion is about rate, not existence.
    assert!(
        report.fp_evictions * 10 <= report.evictions.max(1),
        "{} of {} eviction splices hit a live node",
        report.fp_evictions,
        report.evictions,
    );
    // Every join spliced, every restoration closed its loop. Evicted crash
    // victims rejoin the *gossip* membership on recovery but are not
    // re-spliced as managers, so the final manager count is exact.
    assert_eq!(report.join_splices, report.joins);
    assert_eq!(
        report.members_final as u64,
        cfg.n0 as u64 + report.join_splices - report.evictions,
        "manager-set bookkeeping drifted"
    );
    assert!(report
        .restorations
        .iter()
        .all(|r| r.settled.is_some() || r.rescinded));
    // Causality of every non-rescinded timeline.
    for r in report.restorations.iter().filter(|r| !r.rescinded) {
        assert!(r.detect <= r.quorum && r.quorum <= r.spliced && r.spliced <= r.settled);
    }
}

/// The `churn` tier storm: a quarter-thousand nodes, one churn event every
/// five rounds for over a thousand rounds, 5% drop — bounded to fit a CI
/// budget of roughly a minute in release builds.
#[test]
#[ignore = "release-tier: run with scripts/check.sh churn"]
fn churn_storm_bounded() {
    let cfg = StormConfig {
        n0: 256,
        spares: 128,
        rounds: 1200,
        churn_every: 5,
        warmup: 64,
        down_for: 500,
        gossip: storm_gossip(4.0),
        ..StormConfig::default()
    };
    let report = run_storm(&cfg);
    eprintln!(
        "bounded storm: rounds_run {} crashes {} joins {} evictions {} rescinded {} \
         fp_evictions {} suspicions {} fp_suspicions {} mean_restoration {:?} \
         mean_join_quorum {:?} members_final {}",
        report.rounds_run,
        report.crashes,
        report.joins,
        report.evictions,
        report.rescinded,
        report.fp_evictions,
        report.suspicions,
        report.fp_suspicions,
        report.mean_restoration(),
        report.mean_join_quorum(),
        report.members_final,
    );
    assert_storm_invariants(&report, &cfg);
    assert!(report.crashes >= 100, "crashes {}", report.crashes);
    assert!(report.joins >= 100, "joins {}", report.joins);
}

/// The headline storm: n over two thousand, a crash or join every five
/// rounds for two thousand rounds under 5% drop, conservation and
/// exactly-once oracles continuous, membership driven end-to-end by the
/// detector. Restoration latency must sit in the O(log n) regime: the mean
/// join-to-quorum spread at n≈2048 may cost at most 2.5x the bounded
/// storm's at n≈256 (log₂ ratio 11/8 ≈ 1.4, with slack for the detector's
/// longer inter-observation gaps).
#[test]
#[ignore = "release-tier headline storm (~minutes); run explicitly"]
fn churn_storm_full_scale() {
    let small = StormConfig {
        n0: 256,
        spares: 128,
        rounds: 1200,
        churn_every: 5,
        warmup: 64,
        down_for: 500,
        gossip: storm_gossip(4.0),
        ..StormConfig::default()
    };
    let small_report = run_storm(&small);

    let cfg = StormConfig {
        n0: 2048,
        spares: 256,
        rounds: 2000,
        churn_every: 5,
        warmup: 96,
        down_for: 600,
        gossip: storm_gossip(4.0),
        ..StormConfig::default()
    };
    let report = run_storm(&cfg);
    eprintln!(
        "full-scale storm: rounds_run {} crashes {} joins {} evictions {} rescinded {} \
         fp_evictions {} suspicions {} mean_restoration {:?} mean_join_quorum {:?} \
         members_final {}",
        report.rounds_run,
        report.crashes,
        report.joins,
        report.evictions,
        report.rescinded,
        report.fp_evictions,
        report.suspicions,
        report.mean_restoration(),
        report.mean_join_quorum(),
        report.members_final,
    );
    assert_storm_invariants(&report, &cfg);
    assert!(report.crashes >= 150, "crashes {}", report.crashes);
    assert!(report.joins >= 150, "joins {}", report.joins);

    // O(log n) restoration: join quorum spread grows by at most a small
    // constant factor across an 8x size jump.
    let q_small = small_report
        .mean_join_quorum()
        .expect("small storm had join quorums");
    let q_large = report
        .mean_join_quorum()
        .expect("large storm had join quorums");
    assert!(
        q_large <= q_small * 2.5,
        "join-quorum spread not logarithmic: n=256 → {q_small:.1} rounds, n=2048 → {q_large:.1}"
    );
}
