//! Cross-layer membership tests: discovery spread, detection under message
//! loss, the rejoin path, and — the point of the crate — an unmodified
//! Skeap stack that keeps every semantic theorem while the gossip sidecar
//! suspects, confirms, and revives peers beneath it.

use std::collections::BTreeSet;

use dpq_core::workload::WorkloadSpec;
use dpq_core::{ElemId, Element, History, NodeId, OpKind, OpReturn};
use dpq_gossip::{DetectorConfig, GossipConfig, GossipNode, WithGossip};
use dpq_semantics::{check_heap_properties, check_local_consistency, replay, ReplayMode};
use dpq_sim::{AsyncConfig, AsyncScheduler, FaultPlan, Reliable, RunOutcome, SyncScheduler};

/// Detector tuning for simulator cadence: one heartbeat bump per round, so
/// short windows and a low threshold detect within tens of rounds. Matches
/// the storm harness's tuning.
fn quick(threshold: f64) -> GossipConfig {
    GossipConfig {
        window: 16,
        detector: DetectorConfig {
            threshold,
            confirm_ticks: 8,
            bootstrap_mean: 8.0,
        },
        evict_ticks: 8,
        ..GossipConfig::default()
    }
}

/// A cluster where node 0 is the only seed contact: everyone else starts
/// knowing node 0 alone, and node 0 starts knowing everyone.
fn star(n: u64, cfg: GossipConfig) -> Vec<GossipNode> {
    let all: Vec<NodeId> = (0..n).map(NodeId).collect();
    (0..n)
        .map(|i| {
            let view: &[NodeId] = if i == 0 { &all } else { &all[..1] };
            GossipNode::new(NodeId(i), view, cfg)
        })
        .collect()
}

fn everyone_knows_everyone(nodes: &[GossipNode]) -> bool {
    let n = nodes.len() as u64;
    nodes
        .iter()
        .all(|g| (0..n).all(|p| p == g.me().0 || g.knows(NodeId(p))))
}

// ---------------------------------------------------------------------------
// Discovery: rumor spread from a single seed contact
// ---------------------------------------------------------------------------

/// From a star seed, full mutual knowledge is reached in rounds that grow
/// like log n, not like n: quadrupling the cluster must not even double the
/// spread time once past the constant floor.
#[test]
fn discovery_spreads_from_a_star_seed() {
    let spread = |n: u64| -> u64 {
        let mut sched = SyncScheduler::new(star(n, quick(8.0)));
        match sched.run_until_pred(2_000, everyone_knows_everyone) {
            RunOutcome::Quiescent { rounds } => rounds,
            out => panic!("n={n}: discovery never converged: {out:?}"),
        }
    };
    let small = spread(16);
    let large = spread(64);
    assert!(small > 0, "16 nodes converged instantly?");
    assert!(
        large <= small * 2 + 32,
        "spread rounds grew superlogarithmically: n=16 → {small}, n=64 → {large}"
    );
}

/// The same spread converges under an async adversary dropping a fifth of
/// all messages: anti-entropy is self-retransmitting, so loss only delays.
#[test]
fn discovery_survives_drops_on_the_async_scheduler() {
    let plan = FaultPlan::uniform(0xD15C0, 0.20, 0.05);
    let mut sched =
        AsyncScheduler::with_faults(star(32, quick(16.0)), 0xA5EED, AsyncConfig::default(), plan);
    let ok = sched.run_until_pred(4_000_000, everyone_knows_everyone);
    assert!(ok, "gossip did not converge under 20% drop");
    let discovered: u64 = sched.nodes().iter().map(|g| g.stats.discoveries).sum();
    assert!(
        discovered >= 31,
        "only {discovered} discoveries for 31 unknown nodes"
    );
}

// ---------------------------------------------------------------------------
// Detection: a silent peer is confirmed and evicted, drops notwithstanding
// ---------------------------------------------------------------------------

/// Crash one node of a full-view cluster under 5% uniform drop. Every
/// survivor must walk it through suspicion → confirmation → eviction with
/// no scripted membership change, and no survivor may evict another.
#[test]
fn survivors_confirm_and_evict_a_crashed_peer() {
    let n = 24u64;
    let victim = NodeId(7);
    let all: Vec<NodeId> = (0..n).map(NodeId).collect();
    let nodes: Vec<GossipNode> = (0..n)
        .map(|i| GossipNode::new(NodeId(i), &all, quick(4.0)))
        .collect();
    let crash_at = 96;
    let plan = FaultPlan::uniform(0xDEAD5, 0.05, 0.0).with_crash(victim, crash_at, None);
    let mut sched = SyncScheduler::with_faults(nodes, plan);
    let out = sched.run_until_pred(4_000, |ns| {
        ns.iter().all(|g| g.me() == victim || g.is_evicted(victim))
    });
    let RunOutcome::Quiescent { rounds } = out else {
        panic!("survivors never evicted the crashed peer: {out:?}");
    };
    // Detection plus confirmation plus grace is tens of rounds at this
    // cadence — far from the budget, far from instantaneous.
    assert!(rounds > crash_at, "eviction cannot precede the crash");
    for g in sched.nodes() {
        if g.me() == victim {
            continue;
        }
        assert!(g.stats.evictions >= 1, "{:?} never ran eviction", g.me());
        for p in 0..n {
            let peer = NodeId(p);
            if peer == victim || peer == g.me() {
                continue;
            }
            assert!(
                !g.considers_dead(peer),
                "{:?} wrongly considers live {peer:?} dead",
                g.me()
            );
        }
        assert_eq!(
            g.live_view().len(),
            n as usize - 2, // everyone minus self minus the victim
            "{:?} has a distorted live view",
            g.me()
        );
    }
}

/// An evicted node that comes back must not stay ghosted: bumping its
/// incarnation outranks every tombstone, and the cluster re-admits it.
#[test]
fn an_evicted_node_rejoins_with_a_higher_incarnation() {
    let n = 8u64;
    let victim = NodeId(3);
    let all: Vec<NodeId> = (0..n).map(NodeId).collect();
    let nodes: Vec<GossipNode> = (0..n)
        .map(|i| GossipNode::new(NodeId(i), &all, quick(4.0)))
        .collect();
    // Down for 300 rounds — long past confirmation and eviction.
    let plan = FaultPlan::uniform(0x12EBB, 0.02, 0.0).with_crash(victim, 64, Some(364));
    let mut sched = SyncScheduler::with_faults(nodes, plan);
    let out = sched.run_until_pred(300, |ns| {
        ns.iter().all(|g| g.me() == victim || g.is_evicted(victim))
    });
    assert!(out.is_quiescent(), "eviction did not happen: {out:?}");

    // The victim recovers with its old incarnation: still tombstoned
    // everywhere. The rejoin is its own move — incarnation bump.
    sched.node_mut(victim).rejoin();
    let out = sched.run_until_pred(2_000, |ns| {
        ns.iter()
            .all(|g| g.me() == victim || (!g.is_evicted(victim) && !g.considers_dead(victim)))
    });
    assert!(out.is_quiescent(), "rejoin never took: {out:?}");
    let rejoins: u64 = sched.nodes().iter().map(|g| g.stats.rejoins).sum();
    assert!(rejoins >= 1, "no node counted the rejoin");
    for g in sched.nodes() {
        if g.me() != victim {
            assert!(
                g.live_view().contains(&victim),
                "{:?} did not re-admit the rejoined node",
                g.me()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The composite: Skeap + Reliable + gossip sidecar under the fault matrix
// ---------------------------------------------------------------------------

/// Element conservation as tests/faults.rs states it.
fn assert_conserved(h: &History, residual: &[Element]) {
    h.matching()
        .unwrap_or_else(|e| panic!("matching failed: {e:?}"));
    let mut expect: BTreeSet<ElemId> = h
        .records()
        .filter_map(|r| match r.kind {
            OpKind::Insert(e) => Some(e.id),
            OpKind::DeleteMin => None,
        })
        .collect();
    for r in h.records() {
        if let Some(OpReturn::Removed(e)) = r.ret {
            expect.remove(&e.id);
        }
    }
    let got: BTreeSet<ElemId> = residual.iter().map(|e| e.id).collect();
    assert_eq!(residual.len(), got.len(), "an element is stored twice");
    assert_eq!(got, expect, "elements lost or fabricated");
}

/// A full Skeap stack with the sidecar bolted on, under drops, dups, delay,
/// and a crash-recover: the workload completes, the history replays its
/// witness order exactly, and meanwhile the detector actually fired on the
/// crashed node (a huge eviction grace keeps membership fixed, so the app
/// layer is exercised *with* live suspicion underneath, not instead of it).
#[test]
fn skeap_with_gossip_sidecar_keeps_every_semantic_theorem_under_faults() {
    const RTO: u64 = 8;
    let n = 5usize;
    let spec = WorkloadSpec::balanced(n, 4, 3, 0x905517);
    let all: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let sidecar = GossipConfig {
        evict_ticks: 1_000_000, // suspicion yes, membership change no
        ..quick(4.0)
    };
    let nodes: Vec<WithGossip<Reliable<skeap::SkeapNode>>> =
        Reliable::wrap_all(skeap::cluster::build(n, 3, spec.seed), RTO)
            .into_iter()
            .enumerate()
            .map(|(i, r)| WithGossip::new(r, GossipNode::new(NodeId(i as u64), &all, sidecar)))
            .collect();
    let plan = FaultPlan::uniform(0x5EED9, 0.10, 0.10)
        .with_delay(0.2, 6)
        .with_crash(NodeId(4), 30, Some(120));
    let mut sched = SyncScheduler::with_faults(nodes, plan);
    let scripts = dpq_core::workload::generate(&spec);
    for (node, script) in sched.nodes_mut().iter_mut().zip(&scripts) {
        for op in script {
            node.app.inner_mut().issue(*op);
        }
    }
    let out = sched.run_until_pred(400_000, |ns| {
        ns.iter().all(|wg| wg.app.inner().all_complete())
    });
    assert!(out.is_quiescent(), "composite run stalled: {out:?}");

    // Semantic theorems, verbatim from the fault matrix.
    let history = History::merge(
        sched
            .nodes()
            .iter()
            .map(|wg| wg.app.inner().history.clone())
            .collect(),
    );
    let residual: Vec<Element> = sched
        .nodes()
        .iter()
        .flat_map(|wg| wg.app.inner().shard.elements().map(|(_, e)| *e))
        .collect();
    replay(&history, ReplayMode::Fifo).unwrap_or_else(|e| panic!("witness replay: {e:?}"));
    check_local_consistency(&history).unwrap_or_else(|e| panic!("local consistency: {e:?}"));
    check_heap_properties(&history).unwrap_or_else(|e| panic!("heap properties: {e:?}"));
    assert_conserved(&history, &residual);

    // The sidecar was not idling: node 4's 90-round silence crossed the
    // suspicion threshold on at least one survivor.
    let suspicions: u64 = sched
        .nodes()
        .iter()
        .map(|wg| wg.gossip.detector().stats().suspicions)
        .sum();
    assert!(suspicions >= 1, "detector never suspected the crashed node");
    // And with the grace effectively infinite, nobody was evicted — the
    // app-layer result above was achieved on a stable membership.
    let evictions: u64 = sched
        .nodes()
        .iter()
        .map(|wg| wg.gossip.stats.evictions)
        .sum();
    assert_eq!(evictions, 0, "eviction fired despite the huge grace");
}
