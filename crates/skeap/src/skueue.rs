//! Skueue — the sequentially consistent distributed *queue* of
//! [FSS18a] that Skeap extends ("Skeap is a simple extension of Skueue",
//! §1.4(1)).
//!
//! A queue is exactly the |𝒫| = 1 instance of Skeap: with a single
//! priority, the anchor's `[first, last]` interval is a FIFO position
//! window, inserts append at `last+1` and deletes consume from `first` —
//! enqueue/dequeue semantics with the same sequential-consistency
//! guarantee. This module packages that special case under queue
//! vocabulary, both as a faithful reproduction of the prior system and as
//! a regression anchor: any Skeap change that broke the queue case breaks
//! FIFO order visibly here.

use crate::node::{SkeapConfig, SkeapNode};
use dpq_core::{History, OpId};
use dpq_overlay::{NodeView, Topology};

/// One node of a Skueue instance — a Skeap node over a single priority.
pub struct SkueueNode(pub SkeapNode);

impl SkueueNode {
    /// Enqueue a value (payload) at the back of the queue.
    pub fn enqueue(&mut self, payload: u64) -> OpId {
        self.0.issue_insert(0, payload)
    }

    /// Dequeue the front of the queue (⊥ if empty).
    pub fn dequeue(&mut self) -> OpId {
        self.0.issue_delete()
    }

    /// Have all requests issued at this node completed?
    pub fn all_complete(&self) -> bool {
        self.0.all_complete()
    }
}

impl dpq_sim::Protocol for SkueueNode {
    type Msg = crate::msgs::SkeapMsg;

    fn on_activate(&mut self, ctx: &mut dpq_sim::Ctx<Self::Msg>) {
        self.0.on_activate(ctx);
    }

    fn on_message(
        &mut self,
        from: dpq_core::NodeId,
        msg: Self::Msg,
        ctx: &mut dpq_sim::Ctx<Self::Msg>,
    ) {
        self.0.on_message(from, msg, ctx);
    }

    fn done(&self) -> bool {
        dpq_sim::Protocol::done(&self.0)
    }
}

/// Build a Skueue cluster of `n` nodes.
pub fn build(n: usize, seed: u64) -> Vec<SkueueNode> {
    let topo = Topology::new(n, seed);
    NodeView::extract_all(&topo)
        .into_iter()
        .map(|v| SkueueNode(SkeapNode::new(v, SkeapConfig::fifo(1))))
        .collect()
}

/// Collect the merged history.
pub fn history(nodes: &[SkueueNode]) -> History {
    History::merge(nodes.iter().map(|n| n.0.history.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::OpReturn;
    use dpq_semantics::{check_local_consistency, replay, ReplayMode};
    use dpq_sim::SyncScheduler;

    #[test]
    fn fifo_order_is_preserved_per_producer() {
        let n = 6;
        let mut nodes = build(n, 91);
        // One producer enqueues 1..=10; everyone else dequeues once the
        // inserts are in.
        for i in 1..=10u64 {
            nodes[2].enqueue(i);
        }
        let mut sched = SyncScheduler::new(nodes);
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkueueNode::all_complete))
            .is_quiescent());
        for v in 0..n {
            sched.nodes_mut()[v].dequeue();
            sched.nodes_mut()[v].dequeue();
        }
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkueueNode::all_complete))
            .is_quiescent());
        let history =
            dpq_core::History::merge(sched.nodes().iter().map(|n| n.0.history.clone()).collect());
        // All 10 dequeued + 2 ⊥, and — crucially — in payload order when
        // sorted by witness: FIFO.
        let mut by_witness: Vec<(u64, u64)> = history
            .records()
            .filter_map(|r| match (r.ret, r.witness) {
                (Some(OpReturn::Removed(e)), Some(w)) => Some((w, e.payload)),
                _ => None,
            })
            .collect();
        by_witness.sort();
        let payloads: Vec<u64> = by_witness.into_iter().map(|(_, p)| p).collect();
        assert_eq!(payloads, (1..=10).collect::<Vec<_>>());
        replay(&history, ReplayMode::Fifo).unwrap();
        check_local_consistency(&history).unwrap();
    }

    #[test]
    fn concurrent_producers_stay_sequentially_consistent() {
        let n = 8;
        let mut nodes = build(n, 92);
        for (v, node) in nodes.iter_mut().enumerate() {
            for i in 0..5u64 {
                node.enqueue(v as u64 * 100 + i);
            }
            node.dequeue();
            node.dequeue();
        }
        let mut sched = SyncScheduler::new(nodes);
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkueueNode::all_complete))
            .is_quiescent());
        let history =
            dpq_core::History::merge(sched.nodes().iter().map(|n| n.0.history.clone()).collect());
        replay(&history, ReplayMode::Fifo).unwrap();
        check_local_consistency(&history).unwrap();
    }
}
