//! Driver helpers: building Skeap clusters and feeding them workloads.

use crate::node::{SkeapConfig, SkeapNode};
use dpq_core::workload::WorkloadSpec;
use dpq_core::{History, NodeId, OpKind};
use dpq_overlay::{NodeView, Topology};
use dpq_sim::{AsyncScheduler, MetricsSnapshot, SyncScheduler};

/// Build the `n` protocol nodes of a Skeap instance.
pub fn build(n: usize, n_prios: usize, seed: u64) -> Vec<SkeapNode> {
    let topo = Topology::new(n, seed);
    SkeapNode::build_cluster(NodeView::extract_all(&topo), SkeapConfig::fifo(n_prios))
}

/// Issue every op of a per-node script up front.
pub fn inject_all(nodes: &mut [SkeapNode], scripts: &[Vec<OpKind>]) {
    for (node, script) in nodes.iter_mut().zip(scripts) {
        for op in script {
            node.issue(*op);
        }
    }
}

/// Issue up to `rate` ops per node from the scripts, returning true while
/// any script still has ops left. Used for injection-rate (λ) experiments.
pub fn inject_rate(
    nodes: &mut [SkeapNode],
    scripts: &[Vec<OpKind>],
    cursor: &mut [usize],
    rate: usize,
) -> bool {
    let mut any_left = false;
    for ((node, script), cur) in nodes.iter_mut().zip(scripts).zip(cursor.iter_mut()) {
        let end = (*cur + rate).min(script.len());
        for op in &script[*cur..end] {
            node.issue(*op);
        }
        *cur = end;
        any_left |= *cur < script.len();
    }
    any_left
}

/// Collect the merged history of a cluster.
pub fn history(nodes: &[SkeapNode]) -> History {
    History::merge(nodes.iter().map(|n| n.history.clone()).collect())
}

/// Outcome of a completed synchronous run.
#[derive(Debug, Clone)]
pub struct SyncRun {
    /// Merged per-node histories.
    pub history: History,
    /// Run metrics.
    pub metrics: MetricsSnapshot,
    /// Rounds until every request completed (or the budget).
    pub rounds: u64,
    /// Did every request complete within the budget?
    pub completed: bool,
}

/// Run a full workload synchronously: inject everything, run rounds until
/// every request has completed.
pub fn run_sync(spec: &WorkloadSpec, n_prios: usize, max_rounds: u64) -> SyncRun {
    let mut nodes = build(spec.n, n_prios, spec.seed);
    let scripts = dpq_core::workload::generate(spec);
    inject_all(&mut nodes, &scripts);
    let mut sched = SyncScheduler::new(nodes);
    let out = sched.run_until_pred(max_rounds, |ns| ns.iter().all(SkeapNode::all_complete));
    SyncRun {
        history: history(sched.nodes()),
        metrics: sched.metrics.snapshot(),
        rounds: out.rounds(),
        completed: out.is_quiescent(),
    }
}

/// Run a full workload under the asynchronous adversary.
pub fn run_async(
    spec: &WorkloadSpec,
    n_prios: usize,
    sched_seed: u64,
    max_steps: u64,
) -> Option<History> {
    let mut nodes = build(spec.n, n_prios, spec.seed);
    let scripts = dpq_core::workload::generate(spec);
    inject_all(&mut nodes, &scripts);
    let mut sched = AsyncScheduler::new(nodes, sched_seed);
    let ok = sched.run_until_pred(max_steps, |ns| ns.iter().all(SkeapNode::all_complete));
    ok.then(|| history(sched.nodes()))
}

/// Convenience: the anchor's node id of a freshly built cluster (used by
/// tests that want to poke at anchor-specific state).
pub fn anchor_of(n: usize, seed: u64) -> NodeId {
    let topo = Topology::new(n, seed);
    dpq_overlay::tree::anchor_real(&topo)
}
