//! Driver helpers: building Skeap clusters and feeding them workloads.

use crate::node::{SkeapConfig, SkeapNode};
use dpq_core::workload::WorkloadSpec;
use dpq_core::{Element, History, NodeId, OpId, OpKind};
use dpq_overlay::{NodeView, Topology};
use dpq_sim::{
    AsyncConfig, AsyncScheduler, FaultPlan, FaultStats, LatencySummary, LogHistogram,
    MetricsSnapshot, NullTelemetry, NullTracer, Reliable, SyncScheduler, Telemetry, TraceEvent,
    Tracer,
};

/// Build the `n` protocol nodes of a Skeap instance.
pub fn build(n: usize, n_prios: usize, seed: u64) -> Vec<SkeapNode> {
    let topo = Topology::new(n, seed);
    SkeapNode::build_cluster(NodeView::extract_all(&topo), SkeapConfig::fifo(n_prios))
}

/// Issue every op of a per-node script up front, returning the issued ids
/// (callers pass them to the scheduler's `note_injected` for latency
/// accounting).
pub fn inject_all(nodes: &mut [SkeapNode], scripts: &[Vec<OpKind>]) -> Vec<OpId> {
    let mut ids = Vec::new();
    for (node, script) in nodes.iter_mut().zip(scripts) {
        for op in script {
            ids.push(node.issue(*op));
        }
    }
    ids
}

/// Issue up to `rate` ops per node from the scripts. Returns the issued ids
/// and whether any script still has ops left. Used for injection-rate (λ)
/// experiments.
pub fn inject_rate(
    nodes: &mut [SkeapNode],
    scripts: &[Vec<OpKind>],
    cursor: &mut [usize],
    rate: usize,
) -> (Vec<OpId>, bool) {
    let mut ids = Vec::new();
    let mut any_left = false;
    for ((node, script), cur) in nodes.iter_mut().zip(scripts).zip(cursor.iter_mut()) {
        let end = (*cur + rate).min(script.len());
        for op in &script[*cur..end] {
            ids.push(node.issue(*op));
        }
        *cur = end;
        any_left |= *cur < script.len();
    }
    (ids, any_left)
}

/// Collect the merged history of a cluster.
pub fn history(nodes: &[SkeapNode]) -> History {
    History::merge(nodes.iter().map(|n| n.history.clone()).collect())
}

/// Outcome of a completed synchronous run.
#[derive(Debug, Clone)]
pub struct SyncRun {
    /// Merged per-node histories.
    pub history: History,
    /// Run metrics.
    pub metrics: MetricsSnapshot,
    /// Rounds until every request completed (or the budget).
    pub rounds: u64,
    /// Did every request complete within the budget?
    pub completed: bool,
    /// Log-bucketed distribution of per-operation latencies (rounds from
    /// injection to completion) — the samples behind `metrics.latency`, kept
    /// as a mergeable histogram so experiments can pool distributions across
    /// seeds in O(buckets).
    pub latency_hist: LogHistogram,
}

impl SyncRun {
    /// Order statistics over this run's operation latencies.
    pub fn latency(&self) -> LatencySummary {
        self.metrics.latency
    }
}

/// Run a full workload synchronously: inject everything, run rounds until
/// every request has completed.
pub fn run_sync(spec: &WorkloadSpec, n_prios: usize, max_rounds: u64) -> SyncRun {
    run_sync_traced(spec, n_prios, max_rounds, NullTracer).0
}

/// [`run_sync`] with an event sink attached to the scheduler; returns the
/// sink alongside the run so callers can export the stream.
pub fn run_sync_traced<T: Tracer>(
    spec: &WorkloadSpec,
    n_prios: usize,
    max_rounds: u64,
    tracer: T,
) -> (SyncRun, T) {
    let (run, tracer, _) = run_sync_instrumented(spec, n_prios, max_rounds, tracer, NullTelemetry);
    (run, tracer)
}

/// [`run_sync`] with a metrics sink attached to the scheduler (e.g. a
/// [`dpq_sim::Hub`]); returns the sink alongside the run.
pub fn run_sync_telemetry<M: Telemetry>(
    spec: &WorkloadSpec,
    n_prios: usize,
    max_rounds: u64,
    telemetry: M,
) -> (SyncRun, M) {
    let (run, _, telemetry) =
        run_sync_instrumented(spec, n_prios, max_rounds, NullTracer, telemetry);
    (run, telemetry)
}

/// The general synchronous driver: both an event sink and a metrics sink.
pub fn run_sync_instrumented<T: Tracer, M: Telemetry>(
    spec: &WorkloadSpec,
    n_prios: usize,
    max_rounds: u64,
    tracer: T,
    telemetry: M,
) -> (SyncRun, T, M) {
    let nodes = build(spec.n, n_prios, spec.seed);
    let scripts = dpq_core::workload::generate(spec);
    let mut sched =
        SyncScheduler::with_faults_tracer_telemetry(nodes, FaultPlan::none(), tracer, telemetry);
    for id in inject_all(sched.nodes_mut(), &scripts) {
        sched.note_injected(id);
    }
    let out = sched.run_until_pred(max_rounds, |ns| ns.iter().all(SkeapNode::all_complete));
    let run = SyncRun {
        history: history(sched.nodes()),
        metrics: sched.metrics.snapshot(),
        rounds: out.rounds(),
        completed: out.is_quiescent(),
        latency_hist: sched.metrics.latency_histogram().clone(),
    };
    let (tracer, telemetry) = sched.into_sinks();
    (run, tracer, telemetry)
}

/// Run a full workload under the asynchronous adversary.
pub fn run_async(
    spec: &WorkloadSpec,
    n_prios: usize,
    sched_seed: u64,
    max_steps: u64,
) -> Option<History> {
    run_async_traced(spec, n_prios, sched_seed, max_steps, NullTracer).0
}

/// [`run_async`] with an event sink attached to the scheduler.
pub fn run_async_traced<T: Tracer>(
    spec: &WorkloadSpec,
    n_prios: usize,
    sched_seed: u64,
    max_steps: u64,
    tracer: T,
) -> (Option<History>, T) {
    let nodes = build(spec.n, n_prios, spec.seed);
    let scripts = dpq_core::workload::generate(spec);
    let mut sched = AsyncScheduler::with_tracer(nodes, sched_seed, AsyncConfig::default(), tracer);
    for id in inject_all(sched.nodes_mut(), &scripts) {
        sched.note_injected(id);
    }
    let ok = sched.run_until_pred(max_steps, |ns| ns.iter().all(SkeapNode::all_complete));
    let h = ok.then(|| history(sched.nodes()));
    (h, sched.into_tracer())
}

/// A run's trace events (convenience over [`run_sync_traced`] with a
/// [`dpq_sim::VecTracer`]).
pub fn trace_sync(spec: &WorkloadSpec, n_prios: usize, max_rounds: u64) -> Vec<TraceEvent> {
    run_sync_traced(spec, n_prios, max_rounds, dpq_sim::VecTracer::new())
        .1
        .into_events()
}

/// Convenience: the anchor's node id of a freshly built cluster (used by
/// tests that want to poke at anchor-specific state).
pub fn anchor_of(n: usize, seed: u64) -> NodeId {
    let topo = Topology::new(n, seed);
    dpq_overlay::tree::anchor_real(&topo)
}

/// Outcome of a workload run over a faulty network: the protocol speaks
/// through [`Reliable`] retransmission links while the scheduler's fault
/// layer drops, duplicates, delays, partitions and crash-pauses beneath it.
#[derive(Debug, Clone)]
pub struct FaultyRun {
    /// Merged per-node histories (what the protocol believes happened).
    pub history: History,
    /// Run metrics. Only *delivered* traffic is counted; faulted copies are
    /// destroyed before accounting.
    pub metrics: MetricsSnapshot,
    /// Rounds (sync) or steps (async) consumed.
    pub time: u64,
    /// Did every request complete within the budget?
    pub completed: bool,
    /// Log-bucketed distribution of per-op latency samples, mergeable
    /// across seeds.
    pub latency_hist: LogHistogram,
    /// What the fault layer did to the run.
    pub faults: FaultStats,
    /// Retransmissions the transport performed to beat the drops.
    pub retransmits: u64,
    /// Duplicate deliveries the transport suppressed.
    pub dup_suppressed: u64,
    /// Every element still stored in a DHT shard when the run ended, in
    /// deterministic `(prio, id)` order. Conservation checks compare this
    /// against the history's unremoved inserts.
    pub residual: Vec<Element>,
}

fn residual_of(nodes: &[Reliable<SkeapNode>]) -> Vec<Element> {
    let mut v: Vec<Element> = nodes
        .iter()
        .flat_map(|n| n.inner().shard.elements().map(|(_, e)| *e))
        .collect();
    v.sort_unstable_by_key(|e| (e.prio, e.id));
    v
}

fn transport_totals(nodes: &[Reliable<SkeapNode>]) -> (u64, u64) {
    nodes.iter().fold((0, 0), |(r, d), n| {
        (r + n.stats.retransmits, d + n.stats.dup_suppressed)
    })
}

fn inject_wrapped(sched_nodes: &mut [Reliable<SkeapNode>], scripts: &[Vec<OpKind>]) -> Vec<OpId> {
    let mut ids = Vec::new();
    for (node, script) in sched_nodes.iter_mut().zip(scripts) {
        for op in script {
            ids.push(node.inner_mut().issue(*op));
        }
    }
    ids
}

/// Run a full workload synchronously over a faulty network: every node is
/// wrapped in a [`Reliable`] transport with retransmission `timeout` (in
/// rounds) and the scheduler injects faults per `plan`.
pub fn run_sync_faulty(
    spec: &WorkloadSpec,
    n_prios: usize,
    max_rounds: u64,
    plan: FaultPlan,
    timeout: u64,
) -> FaultyRun {
    run_sync_faulty_telemetry(spec, n_prios, max_rounds, plan, timeout, NullTelemetry).0
}

/// [`run_sync_faulty`] with a metrics sink: the transport layer gets ack-RTT
/// histograms, and its retransmit/duplicate counters are folded into the sink
/// when the run ends.
pub fn run_sync_faulty_telemetry<M: Telemetry>(
    spec: &WorkloadSpec,
    n_prios: usize,
    max_rounds: u64,
    plan: FaultPlan,
    timeout: u64,
    telemetry: M,
) -> (FaultyRun, M) {
    let mut nodes = Reliable::wrap_all(build(spec.n, n_prios, spec.seed), timeout);
    if M::ENABLED {
        for n in &mut nodes {
            n.enable_rtt_histogram();
        }
    }
    let scripts = dpq_core::workload::generate(spec);
    let mut sched = SyncScheduler::with_faults_tracer_telemetry(nodes, plan, NullTracer, telemetry);
    for id in inject_wrapped(sched.nodes_mut(), &scripts) {
        sched.note_injected(id);
    }
    let out = sched.run_until_pred(max_rounds, |ns| ns.iter().all(|n| n.inner().all_complete()));
    let (retransmits, dup_suppressed) = transport_totals(sched.nodes());
    let run = FaultyRun {
        history: History::merge(
            sched
                .nodes()
                .iter()
                .map(|n| n.inner().history.clone())
                .collect(),
        ),
        metrics: sched.metrics.snapshot(),
        time: out.rounds(),
        completed: out.is_quiescent(),
        latency_hist: sched.metrics.latency_histogram().clone(),
        faults: sched.faults().stats,
        retransmits,
        dup_suppressed,
        residual: residual_of(sched.nodes()),
    };
    // The schedulers mirror fault totals at window boundaries, which can
    // trail the final counters by a partial window; push the end-of-run
    // snapshot (the mirror is an idempotent set, not an add).
    let final_faults = sched.faults().stats.totals();
    let (nodes, _, mut telemetry) = sched.into_parts();
    if M::ENABLED {
        telemetry.fault_totals(final_faults);
        for n in &nodes {
            n.export_telemetry(&mut telemetry);
        }
    }
    (run, telemetry)
}

/// Run a full workload under the asynchronous adversary over a faulty
/// network (see [`run_sync_faulty`]; `timeout` is in adversary steps).
pub fn run_async_faulty(
    spec: &WorkloadSpec,
    n_prios: usize,
    sched_seed: u64,
    max_steps: u64,
    plan: FaultPlan,
    timeout: u64,
) -> FaultyRun {
    run_async_faulty_telemetry(
        spec,
        n_prios,
        sched_seed,
        max_steps,
        plan,
        timeout,
        NullTelemetry,
    )
    .0
}

/// [`run_async_faulty`] with a metrics sink (see
/// [`run_sync_faulty_telemetry`]).
pub fn run_async_faulty_telemetry<M: Telemetry>(
    spec: &WorkloadSpec,
    n_prios: usize,
    sched_seed: u64,
    max_steps: u64,
    plan: FaultPlan,
    timeout: u64,
    telemetry: M,
) -> (FaultyRun, M) {
    let mut nodes = Reliable::wrap_all(build(spec.n, n_prios, spec.seed), timeout);
    if M::ENABLED {
        for n in &mut nodes {
            n.enable_rtt_histogram();
        }
    }
    let scripts = dpq_core::workload::generate(spec);
    let mut sched = AsyncScheduler::with_policy_faults_tracer_telemetry(
        nodes,
        AsyncConfig::default(),
        plan,
        dpq_sim::RandomAdversary::new(sched_seed),
        NullTracer,
        telemetry,
    );
    for id in inject_wrapped(sched.nodes_mut(), &scripts) {
        sched.note_injected(id);
    }
    let ok = sched.run_until_pred(max_steps, |ns| ns.iter().all(|n| n.inner().all_complete()));
    let (retransmits, dup_suppressed) = transport_totals(sched.nodes());
    let run = FaultyRun {
        history: History::merge(
            sched
                .nodes()
                .iter()
                .map(|n| n.inner().history.clone())
                .collect(),
        ),
        metrics: sched.metrics.snapshot(),
        time: sched.steps(),
        completed: ok,
        latency_hist: sched.metrics.latency_histogram().clone(),
        faults: sched.faults().stats,
        retransmits,
        dup_suppressed,
        residual: residual_of(sched.nodes()),
    };
    // The schedulers mirror fault totals at window boundaries, which can
    // trail the final counters by a partial window; push the end-of-run
    // snapshot (the mirror is an idempotent set, not an add).
    let final_faults = sched.faults().stats.totals();
    let (nodes, _, mut telemetry) = sched.into_parts();
    if M::ENABLED {
        telemetry.fault_totals(final_faults);
        for n in &nodes {
            n.export_telemetry(&mut telemetry);
        }
    }
    (run, telemetry)
}
