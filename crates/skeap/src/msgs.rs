//! Skeap's message alphabet.

use crate::anchor::EntryAssign;
use crate::batch::Batch;
use dpq_core::bitsize::{tag_bits, vlq_bits};
use dpq_core::{BitSize, MsgKind};
use dpq_dht::{DhtReq, DhtResp};
use dpq_overlay::routing::RouteMsg;

/// Everything a Skeap node sends or receives.
#[derive(Debug, Clone)]
pub enum SkeapMsg {
    /// Phase 1: a combined sub-batch travelling toward the anchor.
    BatchUp {
        /// The sender's batch cycle.
        cycle: u64,
        /// The subtree's combined batch.
        batch: Batch,
    },
    /// Phase 3: position/witness assignments travelling away from the
    /// anchor.
    Down {
        /// The batch cycle being resolved.
        cycle: u64,
        /// Per-group assignments for the receiving subtree.
        assigns: Vec<EntryAssign>,
    },
    /// Phase 4: a DHT request being routed over the LDB.
    Dht(RouteMsg<DhtReq>),
    /// A DHT response returning to the requester.
    Resp(DhtResp),
}

impl BitSize for SkeapMsg {
    fn bits(&self) -> u64 {
        tag_bits(4)
            + match self {
                SkeapMsg::BatchUp { cycle, batch } => vlq_bits(*cycle) + batch.bits(),
                SkeapMsg::Down { cycle, assigns } => vlq_bits(*cycle) + assigns.bits(),
                SkeapMsg::Dht(m) => m.bits(),
                SkeapMsg::Resp(r) => r.bits(),
            }
    }

    fn kind(&self) -> MsgKind {
        match self {
            SkeapMsg::BatchUp { .. } => MsgKind("skeap.batch_up"),
            SkeapMsg::Down { .. } => MsgKind("skeap.down"),
            SkeapMsg::Dht(_) => MsgKind("dht.req"),
            SkeapMsg::Resp(_) => MsgKind("dht.resp"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::OpKind;

    #[test]
    fn batch_messages_grow_with_batch_content() {
        let empty = SkeapMsg::BatchUp {
            cycle: 0,
            batch: Batch::empty(2),
        };
        let ops: Vec<OpKind> = (0..20).map(|_| OpKind::DeleteMin).collect();
        let (b, _) = Batch::from_ops(2, ops.iter());
        let full = SkeapMsg::BatchUp { cycle: 0, batch: b };
        assert!(full.bits() > empty.bits());
    }
}
