//! # skeap
//!
//! **Skeap** (§3 of Feldmann & Scheideler, SPAA 2019): a distributed heap
//! for a *constant* number of priorities, guaranteeing **sequential
//! consistency** and **heap consistency** (Theorem 3.2). Batches of
//! operations are aggregated to the anchor over the aggregation tree,
//! assigned position intervals per priority, decomposed back down, and
//! resolved against the DHT — O(log n) rounds per batch w.h.p., congestion
//! Õ(Λ), messages of O(Λ log² n) bits.
//!
//! ```
//! use dpq_core::workload::WorkloadSpec;
//!
//! let run = skeap::cluster::run_sync(&WorkloadSpec::balanced(8, 20, 3, 7), 3, 10_000);
//! assert!(run.completed);
//! assert_eq!(run.history.completed(), 8 * 20);
//! ```

#![warn(missing_docs)]

pub mod anchor;
pub mod batch;
pub mod cluster;
pub mod msgs;
pub mod node;
pub mod skack;
pub mod skueue;

pub use anchor::{decompose, AnchorState, Discipline, EntryAssign};
pub use batch::{Batch, BatchEntry};
pub use msgs::SkeapMsg;
pub use node::{slot_key, SkeapConfig, SkeapNode};
pub use skack::SkackNode;
pub use skueue::SkueueNode;
