//! Skack — a sequentially consistent distributed *stack*, the \[FSS18b\]
//! extension of Skueue the paper's introduction points to.
//!
//! Identical machinery to Skeap/Skueue except the anchor's DeleteMin
//! discipline: pops consume the *newest* live position
//! ([`crate::anchor::Discipline::Lifo`]). Positions stay globally fresh
//! (insert counters never rewind), so the DHT keys `h(p, pos)` remain
//! unique even though the live set fragments; the anchor tracks it as a
//! deque of disjoint intervals.
//!
//! Semantics: sequential consistency with LIFO replay — the semantics
//! crate's [`dpq_semantics::ReplayMode::Lifo`] oracle.

use crate::node::{SkeapConfig, SkeapNode};
use dpq_core::{History, OpId};
use dpq_overlay::{NodeView, Topology};

/// One node of a Skack instance — a Skeap node with one priority and LIFO
/// discipline.
pub struct SkackNode(pub SkeapNode);

impl SkackNode {
    /// Push a value onto the distributed stack.
    pub fn push(&mut self, payload: u64) -> OpId {
        self.0.issue_insert(0, payload)
    }

    /// Pop the top of the stack (⊥ if empty).
    pub fn pop(&mut self) -> OpId {
        self.0.issue_delete()
    }

    /// Have all requests issued at this node completed?
    pub fn all_complete(&self) -> bool {
        self.0.all_complete()
    }
}

impl dpq_sim::Protocol for SkackNode {
    type Msg = crate::msgs::SkeapMsg;

    fn on_activate(&mut self, ctx: &mut dpq_sim::Ctx<Self::Msg>) {
        self.0.on_activate(ctx);
    }

    fn on_message(
        &mut self,
        from: dpq_core::NodeId,
        msg: Self::Msg,
        ctx: &mut dpq_sim::Ctx<Self::Msg>,
    ) {
        self.0.on_message(from, msg, ctx);
    }

    fn done(&self) -> bool {
        dpq_sim::Protocol::done(&self.0)
    }
}

/// Build a Skack cluster of `n` nodes.
pub fn build(n: usize, seed: u64) -> Vec<SkackNode> {
    let topo = Topology::new(n, seed);
    NodeView::extract_all(&topo)
        .into_iter()
        .map(|v| SkackNode(SkeapNode::new(v, SkeapConfig::lifo(1))))
        .collect()
}

/// Collect the merged history.
pub fn history(nodes: &[SkackNode]) -> History {
    History::merge(nodes.iter().map(|n| n.0.history.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::OpReturn;
    use dpq_semantics::{check_local_consistency, replay, ReplayMode};
    use dpq_sim::SyncScheduler;

    #[test]
    fn lifo_order_from_a_single_producer() {
        let n = 5;
        let mut nodes = build(n, 93);
        for i in 1..=8u64 {
            nodes[1].push(i);
        }
        let mut sched = SyncScheduler::new(nodes);
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkackNode::all_complete))
            .is_quiescent());
        // Pop everything from one node: strict reverse order.
        for _ in 0..8 {
            sched.nodes_mut()[3].pop();
        }
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkackNode::all_complete))
            .is_quiescent());
        let history = history(sched.nodes());
        let mut by_witness: Vec<(u64, u64)> = history
            .records()
            .filter_map(|r| match (r.ret, r.witness) {
                (Some(OpReturn::Removed(e)), Some(w)) => Some((w, e.payload)),
                _ => None,
            })
            .collect();
        by_witness.sort();
        let payloads: Vec<u64> = by_witness.into_iter().map(|(_, p)| p).collect();
        assert_eq!(payloads, (1..=8).rev().collect::<Vec<_>>());
        replay(&history, ReplayMode::Lifo).unwrap();
        check_local_consistency(&history).unwrap();
    }

    #[test]
    fn interleaved_push_pop_cycles_stay_consistent() {
        let n = 7;
        let mut sched = SyncScheduler::new(build(n, 94));
        for wave in 0..4u64 {
            for v in 0..n {
                sched.nodes_mut()[v].push(wave * 100 + v as u64);
                if wave % 2 == 1 {
                    sched.nodes_mut()[v].pop();
                    sched.nodes_mut()[v].pop();
                }
            }
            for _ in 0..25 {
                sched.step_round();
            }
        }
        assert!(sched
            .run_until_pred(200_000, |ns| ns.iter().all(SkackNode::all_complete))
            .is_quiescent());
        let history = history(sched.nodes());
        replay(&history, ReplayMode::Lifo).unwrap();
        check_local_consistency(&history).unwrap();
    }

    #[test]
    fn pop_on_empty_stack_answers_bottom() {
        let mut nodes = build(3, 95);
        nodes[0].pop();
        nodes[2].push(7);
        let mut sched = SyncScheduler::new(nodes);
        assert!(sched
            .run_until_pred(100_000, |ns| ns.iter().all(SkackNode::all_complete))
            .is_quiescent());
        let history = history(sched.nodes());
        replay(&history, ReplayMode::Lifo).unwrap();
    }
}
