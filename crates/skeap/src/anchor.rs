//! Phase 2 (position assignment at the anchor) and the decomposition step of
//! Phase 3 (§3.2.2–3.2.3).
//!
//! The anchor keeps `first_p ≤ last_p + 1` pointers per priority; the
//! occupied positions of priority p are exactly `[first_p, last_p]`. For
//! each group of the combined batch it allocates fresh positions to inserts
//! (extending `last_p`) and consumes the oldest positions for deletes
//! (advancing `first_p`, lowest priority first, walking up the priority
//! order until the demand is met or the heap is exhausted — leftover deletes
//! answer ⊥).
//!
//! It simultaneously materialises the paper's `value(OP)` counter (§3.3):
//! every group gets contiguous *witness* ranges (inserts first, then
//! deletes) in anchor processing order. The decomposition slices both the
//! position intervals and the witness ranges over sub-batches in the fixed
//! convention *own ops first, then children in canonical order* — the same
//! convention [`crate::batch::Batch::combine`] callers use on the way up, so
//! the two traversals agree.

use crate::batch::{Batch, BatchEntry};
use dpq_agg::{Interval, Segments};
use dpq_arena::{LinkedDeques, SmallVec};
use dpq_core::bitsize::vlq_bits;
use dpq_core::BitSize;

/// Positions and witness ranges assigned to one group of a (sub-)batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryAssign {
    /// Insert positions per priority index: `ins[p]` has cardinality
    /// `i_{j,p}` of the sub-batch this assign is for. Inline up to 4
    /// priorities, matching [`crate::batch::BatchEntry::ins`].
    pub ins: SmallVec<Interval, 4>,
    /// Witness range covering all `Σ_p i_{j,p}` inserts of the group.
    pub ins_seq: Interval,
    /// Delete positions, tagged by priority, oldest first. May cover fewer
    /// than `d_j` positions when the heap ran dry.
    pub del: Segments,
    /// How many of the group's deletes answer ⊥ (demand beyond `del`).
    pub bottom: u64,
    /// Witness range covering all `d_j` deletes of the group.
    pub del_seq: Interval,
    /// Consumption direction for `del`: ascending (FIFO) or descending
    /// (LIFO stack discipline) — see [`Discipline`].
    pub lifo: bool,
}

impl EntryAssign {
    /// Structural invariant: witness ranges cover exactly the ops assigned.
    pub fn check(&self) -> bool {
        let ins_total: u64 = self.ins.iter().map(Interval::cardinality).sum();
        ins_total == self.ins_seq.cardinality()
            && self.del.total() + self.bottom == self.del_seq.cardinality()
    }
}

impl BitSize for EntryAssign {
    fn bits(&self) -> u64 {
        self.ins.bits()
            + self.ins_seq.bits()
            + self.del.bits()
            + vlq_bits(self.bottom)
            + self.del_seq.bits()
            + 1
    }
}

/// Which end of a priority's live positions DeleteMin consumes.
///
/// `Fifo` is the paper's Skeap/Skueue rule (oldest position first);
/// `Lifo` is the stack discipline of the \[FSS18b\] extension — the newest
/// live position first. Positions are never reused in either mode (insert
/// counters only grow), so `h(p, pos)` keys stay unique for the lifetime of
/// the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// Oldest position first — the paper's Skeap/Skueue.
    #[default]
    Fifo,
    /// Newest position first — the stack extension.
    Lifo,
}

/// The per-priority live-position state and the witness counter the anchor
/// owns.
///
/// Live positions per priority form a deque of disjoint ascending
/// intervals: inserts extend at the back with fresh positions; FIFO deletes
/// pop from the front, LIFO deletes from the back. Under FIFO the deque is
/// always a single interval — exactly the paper's `[first_p, last_p]` pair;
/// under LIFO it can fragment (pop the top, push fresh above the gap).
#[derive(Debug, Clone)]
pub struct AnchorState {
    discipline: Discipline,
    /// Next fresh position per priority (1-based, monotone).
    next: Vec<u64>,
    /// Live position intervals per priority, ascending and disjoint: one
    /// logical deque per priority, all sharing one slot arena (a
    /// `Vec<VecDeque<Interval>>` would pay a heap block per priority).
    live: LinkedDeques<Interval>,
    /// The `count` variable of §3.3, incremented per processed request.
    witness: u64,
}

impl AnchorState {
    /// FIFO anchor — the paper's Skeap.
    pub fn new(n_prios: usize) -> Self {
        Self::with_discipline(n_prios, Discipline::Fifo)
    }

    /// An anchor with the given delete discipline.
    pub fn with_discipline(n_prios: usize, discipline: Discipline) -> Self {
        AnchorState {
            discipline,
            next: vec![1; n_prios],
            live: LinkedDeques::with_queues(n_prios),
            witness: 1,
        }
    }

    /// Which end deletes consume.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Elements currently in the heap at priority `p` (anchor's view).
    pub fn occupancy(&self, p: usize) -> u64 {
        self.live.iter(p).map(Interval::cardinality).sum()
    }

    /// Elements currently in the heap, all priorities.
    pub fn total_occupancy(&self) -> u64 {
        (0..self.next.len()).map(|p| self.occupancy(p)).sum()
    }

    /// The witness counter (next unassigned serialization number).
    pub fn witness_counter(&self) -> u64 {
        self.witness
    }

    /// Phase 2: assign positions and witness ranges to every group of the
    /// combined batch, in order.
    pub fn assign(&mut self, batch: &Batch) -> Vec<EntryAssign> {
        batch
            .entries
            .iter()
            .map(|entry| self.assign_entry(entry))
            .collect()
    }

    fn assign_entry(&mut self, entry: &BatchEntry) -> EntryAssign {
        let lifo = self.discipline == Discipline::Lifo;
        // Inserts: fresh positions [next_p, next_p + i_{j,p} − 1], appended
        // to the live back (merging when contiguous keeps FIFO at exactly
        // one interval, the paper's [first_p, last_p]).
        let ins: SmallVec<Interval, 4> = entry
            .ins
            .iter()
            .enumerate()
            .map(|(p, &cnt)| {
                let iv = Interval::new(self.next[p], self.next[p] + cnt - 1);
                if cnt > 0 {
                    self.next[p] += cnt;
                    match self.live.back_mut(p) {
                        Some(back) if back.hi + 1 == iv.lo => back.hi = iv.hi,
                        _ => self.live.push_back(p, iv),
                    }
                }
                iv
            })
            .collect();
        let ins_total = entry.ins_total();
        let ins_seq = Interval::new(self.witness, self.witness + ins_total - 1);
        self.witness += ins_total;

        // Deletes: consume live positions of the most-prioritized non-empty
        // priority first, walking up the order (§3.2.2) — from the oldest
        // end (FIFO) or the newest (LIFO).
        let mut pieces: SmallVec<(u64, Interval), 4> = SmallVec::new();
        let mut need = entry.del;
        for p in 0..self.next.len() {
            while need > 0 {
                let Some(edge) = (if lifo {
                    self.live.back_mut(p)
                } else {
                    self.live.front_mut(p)
                }) else {
                    break;
                };
                let take = need.min(edge.cardinality());
                let piece = if lifo {
                    let piece = Interval::new(edge.hi + 1 - take, edge.hi);
                    // take ≤ cardinality and lo ≥ 1 keep this above zero.
                    edge.hi -= take;
                    piece
                } else {
                    let piece = Interval::new(edge.lo, edge.lo + take - 1);
                    edge.lo += take;
                    piece
                };
                if edge.is_empty() {
                    if lifo {
                        self.live.pop_back(p);
                    } else {
                        self.live.pop_front(p);
                    }
                }
                pieces.push((p as u64, piece));
                need -= take;
            }
        }
        // Storage convention: consumption order is ascending iteration for
        // FIFO and *descending* iteration for LIFO, so LIFO pieces are
        // stored reversed (see `Segments::take_prefix_dir`).
        if lifo {
            pieces.as_mut_slice().reverse();
        }
        let mut del = Segments::new();
        for &(p, piece) in &pieces {
            del.push(p, piece);
        }
        let del_seq = Interval::new(self.witness, self.witness + entry.del - 1);
        self.witness += entry.del;

        let assign = EntryAssign {
            ins,
            ins_seq,
            del,
            bottom: need,
            del_seq,
            lifo,
        };
        debug_assert!(assign.check());
        assign
    }
}

/// Phase 3 decomposition: slice a subtree's assignment into chunks for the
/// parts (own batch first, then each child's sub-batch, in the order used
/// when combining). `assigns.len()` may exceed a part's batch length — the
/// excess groups simply carry zero counts for that part.
pub fn decompose(assigns: &[EntryAssign], parts: &[&Batch]) -> Vec<Vec<EntryAssign>> {
    let mut out: Vec<Vec<EntryAssign>> =
        parts.iter().map(|b| Vec::with_capacity(b.len())).collect();
    // Cursor over the group's insert positions, reused across groups. Parts
    // past a batch's length carry implicit zero counts, read through the
    // `Option` below instead of materialising a zero entry per part.
    let mut ins_rest: SmallVec<Interval, 4> = SmallVec::new();
    for (j, assign) in assigns.iter().enumerate() {
        debug_assert!(assign.check());
        ins_rest.clear();
        ins_rest.extend_from_slice(&assign.ins);
        let mut ins_seq_rest = assign.ins_seq;
        let mut del_rest = assign.del.clone();
        let mut bottom_rest = assign.bottom;
        let mut del_seq_rest = assign.del_seq;
        for (part_idx, part) in parts.iter().enumerate() {
            let e = part.entries.get(j);
            let ins: SmallVec<Interval, 4> = ins_rest
                .iter_mut()
                .enumerate()
                .map(|(p, rest)| {
                    let cnt = e.map_or(0, |e| e.ins[p]);
                    let (take, r) = rest.take_prefix(cnt);
                    debug_assert_eq!(take.cardinality(), cnt, "insert positions exhausted");
                    *rest = r;
                    take
                })
                .collect();
            let (ins_seq, r) = ins_seq_rest.take_prefix(e.map_or(0, BatchEntry::ins_total));
            ins_seq_rest = r;
            let e_del = e.map_or(0, |e| e.del);
            let (del, r) = del_rest.take_prefix_dir(e_del, assign.lifo);
            del_rest = r;
            let covered = del.total();
            let bottom = e_del - covered;
            debug_assert!(bottom <= bottom_rest, "bottom budget exceeded");
            bottom_rest -= bottom;
            let (del_seq, r) = del_seq_rest.take_prefix(e_del);
            del_seq_rest = r;
            // Only keep groups the part actually has (trim trailing zeros).
            if j < part.len() {
                out[part_idx].push(EntryAssign {
                    ins,
                    ins_seq,
                    del,
                    bottom,
                    del_seq,
                    lifo: assign.lifo,
                });
            }
        }
        debug_assert_eq!(del_rest.total(), 0, "delete positions left over");
        debug_assert_eq!(bottom_rest, 0, "bottoms left over");
        debug_assert_eq!(ins_seq_rest.cardinality(), 0);
        debug_assert_eq!(del_seq_rest.cardinality(), 0);
    }
    out
}

impl dpq_core::StateHash for EntryAssign {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        self.ins.state_hash(h);
        self.ins_seq.state_hash(h);
        self.del.state_hash(h);
        h.write_u64(self.bottom);
        self.del_seq.state_hash(h);
        h.write_u64(self.lifo as u64);
    }
}

impl dpq_core::StateHash for AnchorState {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        h.write_u64(match self.discipline {
            Discipline::Fifo => 0,
            Discipline::Lifo => 1,
        });
        self.next.state_hash(h);
        // Byte-identical to the former `Vec<VecDeque<Interval>>` hash:
        // queue count, then per queue its length and intervals in order.
        h.write_u64(self.live.num_queues() as u64);
        for p in 0..self.live.num_queues() {
            h.write_u64(self.live.len(p) as u64);
            for iv in self.live.iter(p) {
                iv.state_hash(h);
            }
        }
        h.write_u64(self.witness);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::OpKind;
    use dpq_core::{ElemId, Element, NodeId, Priority};

    fn ins(p: u64) -> OpKind {
        OpKind::Insert(Element::new(ElemId::compose(NodeId(0), p), Priority(p), 0))
    }

    #[test]
    fn inserts_extend_last_and_deletes_consume_first() {
        let mut a = AnchorState::new(2);
        let (b, _) = Batch::from_ops(2, [ins(0), ins(0), ins(1), OpKind::DeleteMin].iter());
        let assigns = a.assign(&b);
        assert_eq!(assigns.len(), 1);
        let g = &assigns[0];
        assert_eq!(g.ins[0], Interval::new(1, 2));
        assert_eq!(g.ins[1], Interval::new(1, 1));
        // The delete consumes position (p=0, 1) — oldest of the lowest
        // priority.
        assert_eq!(g.del.parts, vec![(0, Interval::new(1, 1))]);
        assert_eq!(g.bottom, 0);
        assert_eq!(a.occupancy(0), 1);
        assert_eq!(a.occupancy(1), 1);
    }

    #[test]
    fn deletes_walk_up_the_priority_order() {
        let mut a = AnchorState::new(3);
        // 1 element at p0, 2 at p2; then 4 deletes.
        let (b1, _) = Batch::from_ops(3, [ins(0), ins(2), ins(2)].iter());
        a.assign(&b1);
        let (b2, _) = Batch::from_ops(
            3,
            [
                OpKind::DeleteMin,
                OpKind::DeleteMin,
                OpKind::DeleteMin,
                OpKind::DeleteMin,
            ]
            .iter(),
        );
        let assigns = a.assign(&b2);
        let g = &assigns[0];
        assert_eq!(
            g.del.parts,
            vec![(0, Interval::new(1, 1)), (2, Interval::new(1, 2))]
        );
        assert_eq!(g.bottom, 1, "fourth delete answers ⊥");
        assert_eq!(a.total_occupancy(), 0);
    }

    #[test]
    fn empty_heap_deletes_all_bottom() {
        let mut a = AnchorState::new(1);
        let (b, _) = Batch::from_ops(1, [OpKind::DeleteMin, OpKind::DeleteMin].iter());
        let g = &a.assign(&b)[0];
        assert!(g.del.is_empty());
        assert_eq!(g.bottom, 2);
        assert_eq!(g.del_seq.cardinality(), 2);
    }

    #[test]
    fn witness_ranges_are_contiguous_across_groups() {
        let mut a = AnchorState::new(2);
        let (b, _) = Batch::from_ops(
            2,
            [ins(0), OpKind::DeleteMin, ins(1), OpKind::DeleteMin].iter(),
        );
        let assigns = a.assign(&b);
        assert_eq!(assigns[0].ins_seq, Interval::new(1, 1));
        assert_eq!(assigns[0].del_seq, Interval::new(2, 2));
        assert_eq!(assigns[1].ins_seq, Interval::new(3, 3));
        assert_eq!(assigns[1].del_seq, Interval::new(4, 4));
        assert_eq!(a.witness_counter(), 5);
    }

    #[test]
    fn figure1_trace() {
        // Figure 1: a 3-node chain (anchor v0 → middle → leaf) over
        // 𝒫 = {1,2} (0-indexed {0,1} here), with batches
        //   v0:     ((1,0),0)
        //   middle: ((1,0),2)
        //   leaf:   ((2,1),1)
        // (b): combined batch at v0 is ((4,1),3).
        let mk = |ops: &[OpKind]| Batch::from_ops(2, ops.iter()).0;
        let b_v0 = mk(&[ins(0)]);
        let b_mid = mk(&[ins(0), OpKind::DeleteMin, OpKind::DeleteMin]);
        let b_leaf = mk(&[ins(0), ins(0), ins(1), OpKind::DeleteMin]);
        let sub_mid = b_mid.combine(&b_leaf); // what the middle sends up
        let combined = b_v0.combine(&sub_mid);
        assert_eq!(combined.entries[0].ins, vec![4, 1]);
        assert_eq!(combined.entries[0].del, 3);

        // (c): Phase 2 gives I₁ = ([1,4],[1,1]), D₁ = ([1,3],∅) and
        // pointers last₁=4, last₂=1, first₁=4, first₂=1.
        let mut st = AnchorState::new(2);
        let assigns = st.assign(&combined);
        let g = &assigns[0];
        assert_eq!(g.ins[0], Interval::new(1, 4));
        assert_eq!(g.ins[1], Interval::new(1, 1));
        assert_eq!(g.del.parts, vec![(0, Interval::new(1, 3))]);
        assert_eq!(g.bottom, 0);
        assert_eq!(st.occupancy(0), 1); // [first₁,last₁] = [4,4]
        assert_eq!(st.occupancy(1), 1); // [first₂,last₂] = [1,1]

        // (d): decomposition down the chain. At v0 (own first, then the
        // middle's subtree): v0 keeps (([1,1],∅),(∅,∅)).
        let at_v0 = decompose(&assigns, &[&b_v0, &sub_mid]);
        assert_eq!(at_v0[0][0].ins[0], Interval::new(1, 1));
        assert!(at_v0[0][0].ins[1].is_empty());
        assert_eq!(at_v0[0][0].del.total(), 0);
        // The middle's subtree receives (([2,4],[1,1]),([1,3],∅)) and
        // splits it: middle keeps (([2,2],∅),([1,2],∅)) …
        let at_mid = decompose(&at_v0[1], &[&b_mid, &b_leaf]);
        assert_eq!(at_mid[0][0].ins[0], Interval::new(2, 2));
        assert!(at_mid[0][0].ins[1].is_empty());
        assert_eq!(at_mid[0][0].del.parts, vec![(0, Interval::new(1, 2))]);
        // … and the leaf gets (([3,4],[1,1]),([3,3],∅)) — exactly Figure 1(d).
        assert_eq!(at_mid[1][0].ins[0], Interval::new(3, 4));
        assert_eq!(at_mid[1][0].ins[1], Interval::new(1, 1));
        assert_eq!(at_mid[1][0].del.parts, vec![(0, Interval::new(3, 3))]);
    }

    #[test]
    fn decompose_distributes_bottoms_to_the_tail() {
        let mut a = AnchorState::new(1);
        let (seed, _) = Batch::from_ops(1, [ins(0)].iter());
        a.assign(&seed);
        // Three parts each demanding 1 delete; only 1 element available.
        let (d1, _) = Batch::from_ops(1, [OpKind::DeleteMin].iter());
        let combined = d1.combine(&d1).combine(&d1);
        let assigns = a.assign(&combined);
        assert_eq!(assigns[0].bottom, 2);
        let parts = decompose(&assigns, &[&d1, &d1, &d1]);
        assert_eq!(parts[0][0].del.total(), 1);
        assert_eq!(parts[0][0].bottom, 0);
        assert_eq!(parts[1][0].del.total(), 0);
        assert_eq!(parts[1][0].bottom, 1);
        assert_eq!(parts[2][0].bottom, 1);
    }

    #[test]
    fn decompose_witness_slices_are_disjoint_and_cover() {
        let mut a = AnchorState::new(2);
        let mk = |ops: &[OpKind]| Batch::from_ops(2, ops.iter()).0;
        let b1 = mk(&[ins(0), ins(1), OpKind::DeleteMin]);
        let b2 = mk(&[OpKind::DeleteMin, ins(0)]);
        let combined = b1.combine(&b2);
        let assigns = a.assign(&combined);
        let parts = decompose(&assigns, &[&b1, &b2]);
        let mut seqs: Vec<u64> = Vec::new();
        for part in &parts {
            for g in part {
                seqs.extend(g.ins_seq.positions());
                seqs.extend(g.del_seq.positions());
            }
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=5).collect::<Vec<_>>());
    }
}
