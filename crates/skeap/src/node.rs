//! The Skeap per-node state machine (§3.2).
//!
//! Each node runs a perpetual cycle of the four phases:
//!
//! 1. snapshot the local request buffer into a batch, wait for the
//!    children's combined batches, combine (own first, then children in
//!    canonical order) and send up;
//! 2. (anchor only) assign position intervals and witness ranges;
//! 3. receive the subtree's assignment, slice it for own ops and for each
//!    child, forward the children's slices;
//! 4. turn own assignments into DHT Puts/Gets (⊥-deletes complete
//!    immediately) and return to Phase 1.
//!
//! Cycles run even when batches are empty — an inner node cannot know its
//! subtree is idle without hearing from the children — which matches the
//! paper's perpetually active aggregation. Drivers therefore stop runs on a
//! workload predicate ([`SkeapNode::all_complete`]) rather than quiescence.

use crate::anchor::{decompose, AnchorState, Discipline, EntryAssign};
use crate::batch::Batch;
use crate::msgs::SkeapMsg;
use dpq_agg::Collector;
use dpq_core::hashing::domains;
use dpq_core::{NodeHistory, NodeId, OpId, OpKind, OpReturn};
use dpq_dht::client::Completion;
use dpq_dht::{point_for, DhtClient, DhtShard};
use dpq_overlay::routing::{advance, RouteMsg, RouteOutcome};
use dpq_overlay::NodeView;
use dpq_sim::{Ctx, Protocol};

/// Pack a (priority, position) pair into the DHT's logical key space —
/// the concrete form of the paper's `h(p, pos)` (§3.2.4).
#[inline]
pub fn slot_key(p: u64, pos: u64) -> u64 {
    debug_assert!(p < (1 << 16), "priority index too large to pack");
    debug_assert!(pos < (1 << 48), "position too large to pack");
    (p << 48) | pos
}

/// Configuration shared by all nodes of a Skeap instance.
#[derive(Debug, Clone, Copy)]
pub struct SkeapConfig {
    /// Size of the constant priority universe 𝒫 = {0,…,c−1}.
    pub n_prios: usize,
    /// DeleteMin discipline within a priority: FIFO (the paper's Skeap)
    /// or LIFO (the stack extension).
    pub discipline: Discipline,
}

impl SkeapConfig {
    /// The paper's Skeap: FIFO within each priority.
    pub fn fifo(n_prios: usize) -> Self {
        SkeapConfig {
            n_prios,
            discipline: Discipline::Fifo,
        }
    }

    /// The stack-discipline variant.
    pub fn lifo(n_prios: usize) -> Self {
        SkeapConfig {
            n_prios,
            discipline: Discipline::Lifo,
        }
    }
}

/// One Skeap node.
pub struct SkeapNode {
    /// Local topology knowledge.
    pub view: NodeView,
    /// Instance configuration.
    pub cfg: SkeapConfig,
    /// Recorded requests and returns (merged into a `History` by drivers).
    pub history: NodeHistory,
    /// Requests issued but not yet snapshotted into a batch.
    buffer: Vec<(OpId, OpKind)>,
    /// Monotone element-id counter for inserts created via
    /// [`SkeapNode::issue_insert`].
    elem_seq: u64,

    // ---- cycle state ----
    cycle: u64,
    snapshotted: bool,
    snapshot: Vec<(OpId, OpKind)>,
    groups: Vec<usize>,
    own_batch: Batch,
    collector: Collector<Batch>,
    /// Children's combined sub-batches for the current cycle, canonical
    /// order (memorized in Phase 1, needed for Phase 3 decomposition).
    sub_batches: Vec<Batch>,
    sent_up: bool,
    /// Batches for the *next* cycle arriving before we finished this one.
    early: Vec<(NodeId, u64, Batch)>,

    /// Phase-2 state — only the anchor carries one. Boxed so the n−1
    /// non-anchor nodes pay one pointer, not an inline `AnchorState`.
    anchor: Option<Box<AnchorState>>,

    // ---- DHT ----
    /// This node's DHT storage.
    pub shard: DhtShard,
    client: DhtClient,
}

impl SkeapNode {
    /// A fresh node; the anchor (per the view) gets the Phase-2 state.
    pub fn new(view: NodeView, cfg: SkeapConfig) -> Self {
        let collector = Collector::new(&view.children());
        let anchor = view
            .is_anchor()
            .then(|| Box::new(AnchorState::with_discipline(cfg.n_prios, cfg.discipline)));
        SkeapNode {
            view,
            cfg,
            history: NodeHistory::default(),
            buffer: Vec::new(),
            elem_seq: 0,
            cycle: 0,
            snapshotted: false,
            snapshot: Vec::new(),
            groups: Vec::new(),
            own_batch: Batch::empty(cfg.n_prios),
            collector,
            sub_batches: Vec::new(),
            sent_up: false,
            early: Vec::new(),
            anchor,
            shard: DhtShard::new(),
            client: DhtClient::new(),
        }
    }

    /// Build one node per real node of a topology.
    pub fn build_cluster(views: Vec<NodeView>, cfg: SkeapConfig) -> Vec<SkeapNode> {
        views.into_iter().map(|v| SkeapNode::new(v, cfg)).collect()
    }

    /// Issue a request (buffered until the next cycle's snapshot).
    pub fn issue(&mut self, kind: OpKind) -> OpId {
        if let OpKind::Insert(e) = &kind {
            assert!(
                (e.prio.0 as usize) < self.cfg.n_prios,
                "priority outside the constant universe"
            );
        }
        let id = self.history.issue(self.view.me(), kind);
        self.buffer.push((id, kind));
        id
    }

    /// Issue an Insert of a fresh element with the given priority.
    pub fn issue_insert(&mut self, prio: u64, payload: u64) -> OpId {
        let e = dpq_core::Element::new(
            dpq_core::ElemId::compose(self.view.me(), self.elem_seq),
            dpq_core::Priority(prio),
            payload,
        );
        self.elem_seq += 1;
        self.issue(OpKind::Insert(e))
    }

    /// Issue a DeleteMin.
    pub fn issue_delete(&mut self) -> OpId {
        self.issue(OpKind::DeleteMin)
    }

    /// Have all requests issued at this node completed?
    pub fn all_complete(&self) -> bool {
        self.history.ops.iter().all(|r| r.is_complete())
    }

    /// Requests completed so far.
    pub fn completed(&self) -> usize {
        self.history.ops.iter().filter(|r| r.is_complete()).count()
    }

    /// The batch cycle this node is currently in.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The anchor's view of the heap size — positions allocated but not yet
    /// consumed, summed over all priorities (`Σ_p last_p − first_p + 1`).
    /// `None` at non-anchor nodes; a real deployment would expose this via
    /// one counting aggregation (§2.2).
    pub fn anchor_heap_size(&self) -> Option<u64> {
        self.anchor.as_deref().map(AnchorState::total_occupancy)
    }

    /// The anchor's per-priority occupancy. `None` at non-anchor nodes.
    pub fn anchor_occupancy(&self, prio: u64) -> Option<u64> {
        self.anchor.as_deref().map(|a| a.occupancy(prio as usize))
    }

    fn dispatch_dht(&mut self, msg: RouteMsg<dpq_dht::DhtReq>, ctx: &mut Ctx<SkeapMsg>) {
        match advance(&self.view, msg) {
            RouteOutcome::Delivered { payload, .. } => {
                for (to, resp) in self.shard.handle(payload) {
                    ctx.send(to, SkeapMsg::Resp(resp));
                }
            }
            RouteOutcome::Forward { to, msg } => ctx.send(to, SkeapMsg::Dht(msg)),
        }
    }

    /// Phase 1 completion check: combine and send up (or run Phase 2 at the
    /// anchor).
    fn try_advance(&mut self, ctx: &mut Ctx<SkeapMsg>) {
        if !self.snapshotted || self.sent_up || !self.collector.is_complete() {
            return;
        }
        let children = self.collector.take();
        let mut combined = self.own_batch.clone();
        self.sub_batches = children
            .into_iter()
            .map(|(_, b)| {
                combined = combined.combine(&b);
                b
            })
            .collect();
        self.sent_up = true;
        if self.anchor.is_some() {
            // The anchor closing Phase 1 and running Phase 2 is the batch
            // cycle's global heartbeat — mark it for traces.
            ctx.phase_mark("skeap.batch", self.cycle);
            let assigns = self
                .anchor
                .as_mut()
                .expect("checked above")
                .assign(&combined);
            self.handle_down(assigns, ctx);
        } else {
            let parent = self.view.parent().expect("non-anchor has a parent");
            ctx.send(
                parent,
                SkeapMsg::BatchUp {
                    cycle: self.cycle,
                    batch: combined,
                },
            );
        }
    }

    /// Phases 3 and 4: slice the subtree assignment, forward child slices,
    /// resolve own ops into DHT traffic, and start the next cycle.
    fn handle_down(&mut self, assigns: Vec<EntryAssign>, ctx: &mut Ctx<SkeapMsg>) {
        let parts: Vec<&Batch> = std::iter::once(&self.own_batch)
            .chain(self.sub_batches.iter())
            .collect();
        let mut chunks = decompose(&assigns, &parts);
        // Forward children's slices (chunks[1..] in canonical child order).
        for (i, child) in self.collector.expected().to_vec().into_iter().enumerate() {
            ctx.send(
                child,
                SkeapMsg::Down {
                    cycle: self.cycle,
                    assigns: std::mem::take(&mut chunks[1 + i]),
                },
            );
        }
        // Phase 4 on own ops, in issue order.
        let mut own = std::mem::take(&mut chunks[0]);
        let snapshot = std::mem::take(&mut self.snapshot);
        let groups = std::mem::take(&mut self.groups);
        for ((id, kind), &j) in snapshot.iter().zip(&groups) {
            let g = &mut own[j];
            match kind {
                OpKind::Insert(e) => {
                    let p = e.prio.0 as usize;
                    let (one, rest) = g.ins[p].take_prefix(1);
                    assert_eq!(one.cardinality(), 1, "insert position missing");
                    g.ins[p] = rest;
                    let (w, rest) = g.ins_seq.take_prefix(1);
                    g.ins_seq = rest;
                    self.history.witness(*id, w.lo);
                    let logical = slot_key(p as u64, one.lo);
                    let req = self.client.put(self.view.me(), logical, *e, id.seq);
                    let msg = RouteMsg::start(
                        self.view.me(),
                        point_for(domains::SKEAP_KEY, logical),
                        req,
                    );
                    self.dispatch_dht(msg, ctx);
                }
                OpKind::DeleteMin => {
                    let (w, rest) = g.del_seq.take_prefix(1);
                    g.del_seq = rest;
                    // Seeded bug for the model checker's mutation smoke
                    // test: clearing the low bit of the delete witness
                    // collides adjacent witnesses, which the replay oracle
                    // must catch (never compiled into normal builds).
                    #[cfg(mc_mutate)]
                    self.history.witness(*id, w.lo & !1);
                    #[cfg(not(mc_mutate))]
                    self.history.witness(*id, w.lo);
                    let (one, rest) = g.del.take_prefix_dir(1, g.lifo);
                    g.del = rest;
                    let slot = one.iter_positions().next();
                    if let Some((p, pos)) = slot {
                        let logical = slot_key(p, pos);
                        let req = self.client.get(self.view.me(), logical, id.seq);
                        let msg = RouteMsg::start(
                            self.view.me(),
                            point_for(domains::SKEAP_KEY, logical),
                            req,
                        );
                        self.dispatch_dht(msg, ctx);
                    } else {
                        assert!(g.bottom > 0, "delete with neither position nor ⊥");
                        g.bottom -= 1;
                        self.history.complete(*id, OpReturn::Bottom);
                        ctx.op_completed(*id);
                    }
                }
            }
        }
        for g in &own {
            assert_eq!(g.ins_seq.cardinality(), 0, "unassigned insert witnesses");
            assert_eq!(g.del_seq.cardinality(), 0, "unassigned delete witnesses");
            assert_eq!(g.bottom, 0, "unassigned ⊥ deletes");
        }

        // Back to Phase 1 for the next cycle. `Collector::take` in
        // `try_advance` already reset the collector in place; `own_batch`
        // is replaced by an empty batch (not merely cleared) so an idle
        // node's resident footprint does not retain its last batch.
        self.cycle += 1;
        self.snapshotted = false;
        self.sent_up = false;
        self.sub_batches.clear();
        self.own_batch = Batch::empty(self.cfg.n_prios);
        for (from, cycle, batch) in std::mem::take(&mut self.early) {
            assert_eq!(cycle, self.cycle, "stale early batch");
            self.collector.insert(from, batch);
        }
    }
}

impl Protocol for SkeapNode {
    type Msg = SkeapMsg;

    fn on_activate(&mut self, ctx: &mut Ctx<SkeapMsg>) {
        if !self.snapshotted {
            let snapshot = std::mem::take(&mut self.buffer);
            let kinds: Vec<OpKind> = snapshot.iter().map(|(_, k)| *k).collect();
            let (batch, groups) = Batch::from_ops(self.cfg.n_prios, kinds.iter());
            self.snapshot = snapshot;
            self.own_batch = batch;
            self.groups = groups;
            self.snapshotted = true;
        }
        self.try_advance(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: SkeapMsg, ctx: &mut Ctx<SkeapMsg>) {
        match msg {
            SkeapMsg::BatchUp { cycle, batch } => {
                if cycle == self.cycle {
                    self.collector.insert(from, batch);
                    self.try_advance(ctx);
                } else if cycle == self.cycle + 1 {
                    self.early.push((from, cycle, batch));
                } else {
                    panic!(
                        "batch for cycle {cycle} at node {} in cycle {}",
                        self.view.me(),
                        self.cycle
                    );
                }
            }
            SkeapMsg::Down { cycle, assigns } => {
                assert_eq!(cycle, self.cycle, "down-wave for wrong cycle");
                assert!(self.sent_up, "down-wave before sending up");
                self.handle_down(assigns, ctx);
            }
            SkeapMsg::Dht(m) => self.dispatch_dht(m, ctx),
            SkeapMsg::Resp(r) => match self.client.on_response(&r) {
                Completion::PutDone { token } => {
                    let id = OpId {
                        node: self.view.me(),
                        seq: token,
                    };
                    self.history.complete(id, OpReturn::Inserted);
                    ctx.op_completed(id);
                }
                Completion::GotElement { token, elem } => {
                    let id = OpId {
                        node: self.view.me(),
                        seq: token,
                    };
                    self.history.complete(id, OpReturn::Removed(elem));
                    ctx.op_completed(id);
                }
            },
        }
    }

    fn done(&self) -> bool {
        self.buffer.is_empty() && self.client.idle() && self.all_complete()
    }
}

impl dpq_core::StateHash for SkeapNode {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        // `view` and `cfg` are static per scenario and excluded; everything
        // that evolves along an execution is written.
        self.history.state_hash(h);
        self.buffer.state_hash(h);
        h.write_u64(self.elem_seq);
        h.write_u64(self.cycle);
        h.write_u64(self.snapshotted as u64);
        self.snapshot.state_hash(h);
        h.write_u64(self.groups.len() as u64);
        for g in &self.groups {
            h.write_u64(*g as u64);
        }
        self.own_batch.state_hash(h);
        self.collector.state_hash(h);
        self.sub_batches.state_hash(h);
        h.write_u64(self.sent_up as u64);
        self.early.state_hash(h);
        // `Option<&T>` hashes the same bytes as `Option<T>` — the box is
        // a layout detail.
        self.anchor.as_deref().state_hash(h);
        self.shard.state_hash(h);
        self.client.state_hash(h);
    }
}
