//! Operation batches (Definition 3.1).
//!
//! A batch is a sequence `(i₁, d₁, …, i_k, d_k)` where `i_j ∈ ℕ^{|𝒫|}`
//! counts inserts per priority in the j-th *group* and `d_j ∈ ℕ` counts
//! DeleteMin()s. A node's snapshot is grouped by alternation: consecutive
//! inserts extend the current group's insert vector, consecutive deletes its
//! delete counter, and an insert *after* a delete opens the next group —
//! reproducing the paper's example where
//! `Ins(p1), Ins(p1), Del, Ins(p2), Del` becomes `((2,0),1,(0,1),1)`.
//!
//! Combining batches adds them entrywise, zero-padding the shorter one.

use dpq_arena::SmallVec;
use dpq_core::bitsize::vlq_bits;
use dpq_core::{BitSize, OpKind};

/// One `(i_j, d_j)` group.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchEntry {
    /// Inserts per priority index (length = |𝒫|). Inline up to 4
    /// priorities — the E-series universes — so a group costs no heap.
    pub ins: SmallVec<u64, 4>,
    /// DeleteMin count.
    pub del: u64,
}

impl BatchEntry {
    /// A group with no operations.
    pub fn zero(n_prios: usize) -> Self {
        BatchEntry {
            ins: SmallVec::from_elem(0, n_prios),
            del: 0,
        }
    }

    /// Total inserts across priorities.
    pub fn ins_total(&self) -> u64 {
        self.ins.iter().sum()
    }
}

/// A batch: the snapshot of one node's buffered requests, or any entrywise
/// combination of such snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Size of the priority universe (insert vectors have this length).
    pub n_prios: usize,
    /// The alternating groups, in issue order.
    pub entries: Vec<BatchEntry>,
}

impl Batch {
    /// A batch with no groups.
    pub fn empty(n_prios: usize) -> Self {
        Batch {
            n_prios,
            entries: Vec::new(),
        }
    }

    /// Build a batch from an issue-ordered op sequence; also returns, per
    /// op, the group index it landed in (needed to map assigned positions
    /// back onto the concrete ops in Phase 3).
    pub fn from_ops<'a>(
        n_prios: usize,
        ops: impl IntoIterator<Item = &'a OpKind>,
    ) -> (Batch, Vec<usize>) {
        let mut b = Batch::empty(n_prios);
        let mut groups = Vec::new();
        for op in ops {
            match op {
                OpKind::Insert(e) => {
                    let p = e.prio.0 as usize;
                    assert!(p < n_prios, "priority {p} out of universe 0..{n_prios}");
                    // An insert after deletes starts a new group.
                    if b.entries.last().is_none_or(|g| g.del > 0) {
                        b.entries.push(BatchEntry::zero(n_prios));
                    }
                    b.entries.last_mut().unwrap().ins[p] += 1;
                }
                OpKind::DeleteMin => {
                    if b.entries.is_empty() {
                        b.entries.push(BatchEntry::zero(n_prios));
                    }
                    b.entries.last_mut().unwrap().del += 1;
                }
            }
            groups.push(b.entries.len() - 1);
        }
        (b, groups)
    }

    /// Entrywise combination (§3.1), zero-padding the shorter batch.
    pub fn combine(&self, other: &Batch) -> Batch {
        assert_eq!(self.n_prios, other.n_prios);
        let len = self.entries.len().max(other.entries.len());
        let mut entries = Vec::with_capacity(len);
        for j in 0..len {
            let mut e = BatchEntry::zero(self.n_prios);
            for s in [self.entries.get(j), other.entries.get(j)]
                .into_iter()
                .flatten()
            {
                for (a, b) in e.ins.iter_mut().zip(&s.ins) {
                    *a += b;
                }
                e.del += s.del;
            }
            entries.push(e);
        }
        Batch {
            n_prios: self.n_prios,
            entries,
        }
    }

    /// The group `(i_j, d_j)`, with implicit zeros past the end.
    pub fn entry(&self, j: usize) -> BatchEntry {
        self.entries
            .get(j)
            .cloned()
            .unwrap_or_else(|| BatchEntry::zero(self.n_prios))
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No groups at all (an idle node's snapshot).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total operation count.
    pub fn total_ops(&self) -> u64 {
        self.entries.iter().map(|e| e.ins_total() + e.del).sum()
    }
}

impl BitSize for Batch {
    fn bits(&self) -> u64 {
        vlq_bits(self.entries.len() as u64)
            + self
                .entries
                .iter()
                .map(|e| e.ins.iter().map(|&v| vlq_bits(v)).sum::<u64>() + vlq_bits(e.del))
                .sum::<u64>()
    }
}

impl dpq_core::StateHash for BatchEntry {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        self.ins.state_hash(h);
        h.write_u64(self.del);
    }
}

impl dpq_core::StateHash for Batch {
    fn state_hash(&self, h: &mut dpq_core::StateHasher) {
        h.write_u64(self.n_prios as u64);
        self.entries.state_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Element, NodeId, Priority};

    fn ins(p: u64) -> OpKind {
        OpKind::Insert(Element::new(ElemId::compose(NodeId(0), p), Priority(p), 0))
    }

    #[test]
    fn paper_example_grouping() {
        // Ins(p=0), Ins(p=0), Del, Ins(p=1), Del with 𝒫 = {0,1}
        // → ((2,0),1,(0,1),1).
        let ops = [ins(0), ins(0), OpKind::DeleteMin, ins(1), OpKind::DeleteMin];
        let (b, groups) = Batch::from_ops(2, ops.iter());
        assert_eq!(b.entries.len(), 2);
        assert_eq!(
            b.entries[0],
            BatchEntry {
                ins: SmallVec::from_slice(&[2, 0]),
                del: 1
            }
        );
        assert_eq!(
            b.entries[1],
            BatchEntry {
                ins: SmallVec::from_slice(&[0, 1]),
                del: 1
            }
        );
        assert_eq!(groups, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn leading_delete_occupies_group_zero() {
        let ops = [OpKind::DeleteMin, ins(0)];
        let (b, groups) = Batch::from_ops(1, ops.iter());
        assert_eq!(b.entries.len(), 2);
        assert_eq!(
            b.entries[0],
            BatchEntry {
                ins: SmallVec::from_slice(&[0]),
                del: 1
            }
        );
        assert_eq!(
            b.entries[1],
            BatchEntry {
                ins: SmallVec::from_slice(&[1]),
                del: 0
            }
        );
        assert_eq!(groups, vec![0, 1]);
    }

    #[test]
    fn combine_pads_with_zeros() {
        let (a, _) = Batch::from_ops(2, [ins(0), OpKind::DeleteMin, ins(1)].iter());
        let (b, _) = Batch::from_ops(2, [ins(1)].iter());
        let c = a.combine(&b);
        assert_eq!(c.entries.len(), 2);
        assert_eq!(
            c.entries[0],
            BatchEntry {
                ins: SmallVec::from_slice(&[1, 1]),
                del: 1
            }
        );
        assert_eq!(
            c.entries[1],
            BatchEntry {
                ins: SmallVec::from_slice(&[0, 1]),
                del: 0
            }
        );
        // Commutative.
        assert_eq!(c, b.combine(&a));
    }

    #[test]
    fn combine_empty_is_identity() {
        let (a, _) = Batch::from_ops(3, [ins(2), OpKind::DeleteMin].iter());
        assert_eq!(a.combine(&Batch::empty(3)), a);
    }

    #[test]
    fn totals_count_all_ops() {
        let (a, _) = Batch::from_ops(2, [ins(0), ins(1), OpKind::DeleteMin, ins(0)].iter());
        assert_eq!(a.total_ops(), 4);
    }

    #[test]
    fn entry_past_end_is_zero() {
        let b = Batch::empty(2);
        assert_eq!(b.entry(5), BatchEntry::zero(2));
    }

    #[test]
    fn bitsize_grows_with_entries_and_magnitudes() {
        let (small, _) = Batch::from_ops(2, [ins(0)].iter());
        let mut big = small.clone();
        big.entries[0].ins[0] = 1 << 40;
        assert!(big.bits() > small.bits());
        let longer = small.combine(&Batch {
            n_prios: 2,
            entries: vec![BatchEntry::zero(2); 8],
        });
        assert!(longer.bits() > small.bits());
    }
}
