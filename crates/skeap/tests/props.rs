//! Property tests for Skeap's batch algebra and the anchor's position
//! assignment — the combinatorial core behind Theorem 3.2.

use dpq_core::{ElemId, Element, NodeId, OpKind, Priority};
use proptest::prelude::*;
use skeap::{decompose, AnchorState, Batch};

const P: usize = 3;

fn arb_ops() -> impl Strategy<Value = Vec<OpKind>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..P as u64).prop_map(|p| {
                OpKind::Insert(Element::new(ElemId::compose(NodeId(0), p), Priority(p), 0))
            }),
            Just(OpKind::DeleteMin),
        ],
        0..20,
    )
}

proptest! {
    /// Batch construction counts exactly the ops, and groups alternate.
    #[test]
    fn batch_counts_and_groups_are_consistent(ops in arb_ops()) {
        let (b, groups) = Batch::from_ops(P, ops.iter());
        prop_assert_eq!(b.total_ops() as usize, ops.len());
        prop_assert_eq!(groups.len(), ops.len());
        // Group indices are monotone non-decreasing.
        prop_assert!(groups.windows(2).all(|w| w[0] <= w[1]));
        // Per-group counts match a manual tally.
        for (j, entry) in b.entries.iter().enumerate() {
            let ins: u64 = ops
                .iter()
                .zip(&groups)
                .filter(|(o, g)| **g == j && o.is_insert())
                .count() as u64;
            prop_assert_eq!(entry.ins_total(), ins);
        }
    }

    /// Combination is commutative, associative, and zero-padded.
    #[test]
    fn combine_is_commutative_and_associative(
        a in arb_ops(), b in arb_ops(), c in arb_ops(),
    ) {
        let (ba, _) = Batch::from_ops(P, a.iter());
        let (bb, _) = Batch::from_ops(P, b.iter());
        let (bc, _) = Batch::from_ops(P, c.iter());
        prop_assert_eq!(ba.combine(&bb), bb.combine(&ba));
        prop_assert_eq!(
            ba.combine(&bb).combine(&bc),
            ba.combine(&bb.combine(&bc))
        );
        prop_assert_eq!(ba.combine(&Batch::empty(P)), ba);
    }

    /// The anchor's assignment conserves positions: inserts get exactly
    /// their count, deletes get positions + ⊥ summing to their count, and
    /// witness ranges are contiguous and exhaustive.
    #[test]
    fn anchor_assignment_conserves_everything(
        rounds in proptest::collection::vec(arb_ops(), 1..4),
    ) {
        let mut anchor = AnchorState::new(P);
        let mut next_witness = 1u64;
        for ops in rounds {
            let (b, _) = Batch::from_ops(P, ops.iter());
            let before = anchor.total_occupancy();
            let assigns = anchor.assign(&b);
            let mut ins_total = 0u64;
            let mut del_covered = 0u64;
            let mut bottoms = 0u64;
            for (j, g) in assigns.iter().enumerate() {
                prop_assert!(g.check());
                let e = b.entry(j);
                let got: u64 = g.ins.iter().map(|iv| iv.cardinality()).sum();
                prop_assert_eq!(got, e.ins_total());
                prop_assert_eq!(g.del.total() + g.bottom, e.del);
                ins_total += got;
                del_covered += g.del.total();
                bottoms += g.bottom;
                // Witness contiguity across groups.
                if got > 0 {
                    prop_assert_eq!(g.ins_seq.lo, next_witness);
                }
                next_witness += got;
                if e.del > 0 {
                    prop_assert_eq!(g.del_seq.lo, next_witness);
                }
                next_witness += e.del;
            }
            // Heap occupancy evolves by inserts minus matched deletes.
            prop_assert_eq!(
                anchor.total_occupancy(),
                before + ins_total - del_covered
            );
            let _ = bottoms;
        }
    }

    /// Decomposition redistributes exactly the assigned positions over the
    /// parts, whatever the split of ops into parts.
    #[test]
    fn decompose_partitions_positions(
        a in arb_ops(), b in arb_ops(), c in arb_ops(),
    ) {
        let (pa, _) = Batch::from_ops(P, a.iter());
        let (pb, _) = Batch::from_ops(P, b.iter());
        let (pc, _) = Batch::from_ops(P, c.iter());
        let combined = pa.combine(&pb).combine(&pc);
        let mut anchor = AnchorState::new(P);
        let assigns = anchor.assign(&combined);
        let parts = decompose(&assigns, &[&pa, &pb, &pc]);
        // Union of all slices equals the root assignment, per group and
        // priority.
        for (j, root) in assigns.iter().enumerate() {
            for p in 0..P {
                let root_pos: Vec<u64> = root.ins[p].positions().collect();
                let mut got: Vec<u64> = Vec::new();
                for (part_idx, part) in [&pa, &pb, &pc].iter().enumerate() {
                    if j < part.len() {
                        got.extend(parts[part_idx][j].ins[p].positions());
                    }
                }
                prop_assert_eq!(got, root_pos);
            }
            let root_del: Vec<(u64, u64)> = root.del.iter_positions().collect();
            let mut got: Vec<(u64, u64)> = Vec::new();
            let mut bottoms = 0;
            for (part_idx, part) in [&pa, &pb, &pc].iter().enumerate() {
                if j < part.len() {
                    got.extend(parts[part_idx][j].del.iter_positions());
                    bottoms += parts[part_idx][j].bottom;
                }
            }
            prop_assert_eq!(got, root_del);
            prop_assert_eq!(bottoms, root.bottom);
        }
    }
}
