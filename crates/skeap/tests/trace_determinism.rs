//! Trace determinism: the event stream is a pure function of the seeds, and
//! recording it never perturbs the run.
//!
//! Two properties, each checked under both schedulers:
//!
//! * **replay determinism** — two runs of the same seeded workload emit
//!   byte-identical JSONL event streams;
//! * **observer neutrality** — running with the no-op tracer produces
//!   exactly the same `MetricsSnapshot` (and history) as a fully traced
//!   run, i.e. tracing is read-only.

use dpq_core::workload::WorkloadSpec;
use dpq_trace::write_jsonl;
use proptest::prelude::*;
use skeap::cluster;

const N_PRIOS: usize = 2;
const MAX_ROUNDS: u64 = 2_000_000;
const MAX_STEPS: u64 = 40_000_000;

fn jsonl(events: &[dpq_sim::TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_jsonl(events, &mut buf).expect("write to Vec cannot fail");
    buf
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (2usize..10, 1usize..5, 0u64..1 << 20)
        .prop_map(|(n, ops, seed)| WorkloadSpec::balanced(n, ops, N_PRIOS as u64, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Same seeds, same bytes — synchronous scheduler.
    #[test]
    fn sync_event_streams_replay_byte_identical(spec in arb_spec()) {
        let a = cluster::trace_sync(&spec, N_PRIOS, MAX_ROUNDS);
        let b = cluster::trace_sync(&spec, N_PRIOS, MAX_ROUNDS);
        prop_assert!(!a.is_empty(), "a completed run must emit events");
        prop_assert_eq!(jsonl(&a), jsonl(&b));
    }

    /// Same seeds, same bytes — asynchronous adversary.
    #[test]
    fn async_event_streams_replay_byte_identical(
        spec in arb_spec(),
        sched_seed in 0u64..1 << 20,
    ) {
        let (ha, ta) = cluster::run_async_traced(
            &spec, N_PRIOS, sched_seed, MAX_STEPS, dpq_sim::VecTracer::new());
        let (hb, tb) = cluster::run_async_traced(
            &spec, N_PRIOS, sched_seed, MAX_STEPS, dpq_sim::VecTracer::new());
        prop_assert!(ha.is_some() && hb.is_some(), "async runs must drain");
        prop_assert_eq!(jsonl(&ta.into_events()), jsonl(&tb.into_events()));
    }

    /// The no-op tracer is compile-away-equivalent to a real sink: metrics,
    /// rounds, and the merged history all match a traced run of the same
    /// workload.
    #[test]
    fn null_tracer_leaves_metrics_unchanged(spec in arb_spec()) {
        let untraced = cluster::run_sync(&spec, N_PRIOS, MAX_ROUNDS);
        let (traced, tracer) = cluster::run_sync_traced(
            &spec, N_PRIOS, MAX_ROUNDS, dpq_sim::VecTracer::new());
        prop_assert!(untraced.completed && traced.completed);
        prop_assert_eq!(untraced.metrics, traced.metrics);
        prop_assert_eq!(untraced.rounds, traced.rounds);
        prop_assert_eq!(&untraced.latency_hist, &traced.latency_hist);
        prop_assert_eq!(
            format!("{:?}", untraced.history.nodes),
            format!("{:?}", traced.history.nodes)
        );
        prop_assert!(!tracer.events.is_empty());
    }

    /// The metrics hub is as read-only as the null tracer: a telemetry-enabled
    /// run (hub attached to the scheduler, ack-RTT histograms on the
    /// transport) is RNG-draw-for-draw identical to the bare run of the same
    /// seeds — same history, metrics, fault decisions, and latency
    /// distribution — under the asynchronous adversary over a faulty network.
    #[test]
    fn telemetry_hub_leaves_faulty_async_run_unchanged(
        spec in arb_spec(),
        sched_seed in 0u64..1 << 20,
    ) {
        let plan = dpq_sim::FaultPlan::uniform(0xD1CE, 0.05, 0.05);
        let bare = cluster::run_async_faulty(
            &spec, N_PRIOS, sched_seed, MAX_STEPS, plan.clone(), 64);
        let (inst, hub) = cluster::run_async_faulty_telemetry(
            &spec, N_PRIOS, sched_seed, MAX_STEPS, plan, 64, dpq_sim::Hub::new());
        prop_assert!(bare.completed && inst.completed, "faulty runs must drain");
        prop_assert_eq!(bare.metrics, inst.metrics);
        prop_assert_eq!(bare.time, inst.time);
        prop_assert_eq!(bare.faults, inst.faults);
        prop_assert_eq!(bare.retransmits, inst.retransmits);
        prop_assert_eq!(bare.dup_suppressed, inst.dup_suppressed);
        prop_assert_eq!(&bare.latency_hist, &inst.latency_hist);
        prop_assert_eq!(
            format!("{:?}", bare.history.nodes),
            format!("{:?}", inst.history.nodes)
        );
        // And the hub observed the run it rode along with.
        prop_assert_eq!(hub.op_latency.count(), inst.latency_hist.count());
        prop_assert_eq!(&hub.op_latency, &inst.latency_hist);
        prop_assert_eq!(hub.faults, inst.faults.totals());
        prop_assert_eq!(
            hub.counter_by_name("reliable.retransmits").unwrap_or(0),
            inst.retransmits
        );
        prop_assert_eq!(
            hub.counter_by_name("reliable.dup_suppressed").unwrap_or(0),
            inst.dup_suppressed
        );
    }
}
