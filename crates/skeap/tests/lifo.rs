//! The LIFO (stack-discipline) variant under the same batteries as FIFO
//! Skeap: whole-cluster runs, both schedulers, random workloads.

use dpq_core::workload::{generate, WorkloadSpec};
use dpq_core::History;
use dpq_overlay::{NodeView, Topology};
use dpq_semantics::{check_heap_properties, check_local_consistency, replay, ReplayMode};
use dpq_sim::{AsyncScheduler, SyncScheduler};
use skeap::{SkeapConfig, SkeapNode};

fn build_lifo(n: usize, n_prios: usize, seed: u64) -> Vec<SkeapNode> {
    let topo = Topology::new(n, seed);
    SkeapNode::build_cluster(NodeView::extract_all(&topo), SkeapConfig::lifo(n_prios))
}

fn history(nodes: &[SkeapNode]) -> History {
    History::merge(nodes.iter().map(|n| n.history.clone()).collect())
}

fn assert_lifo_consistent(h: &History) {
    replay(h, ReplayMode::Lifo).unwrap_or_else(|e| panic!("LIFO replay failed: {e}"));
    check_local_consistency(h).unwrap_or_else(|e| panic!("local order: {e}"));
    check_heap_properties(h).unwrap_or_else(|e| panic!("heap property: {e}"));
}

#[test]
fn sync_lifo_runs_are_sequentially_consistent() {
    for (n, ops, prios, seed) in [
        (1usize, 30usize, 2u64, 1u64),
        (4, 20, 1, 2),
        (9, 16, 3, 3),
        (20, 12, 2, 4),
    ] {
        let mut nodes = build_lifo(n, prios as usize, seed);
        let scripts = generate(&WorkloadSpec::balanced(n, ops, prios, seed));
        for (node, script) in nodes.iter_mut().zip(&scripts) {
            for op in script {
                node.issue(*op);
            }
        }
        let mut sched = SyncScheduler::new(nodes);
        assert!(sched
            .run_until_pred(300_000, |ns| ns.iter().all(SkeapNode::all_complete))
            .is_quiescent());
        assert_lifo_consistent(&history(sched.nodes()));
    }
}

#[test]
fn async_lifo_runs_are_sequentially_consistent() {
    for seed in 0..5u64 {
        let mut nodes = build_lifo(7, 2, 200 + seed);
        let scripts = generate(&WorkloadSpec::balanced(7, 12, 2, 200 + seed));
        for (node, script) in nodes.iter_mut().zip(&scripts) {
            for op in script {
                node.issue(*op);
            }
        }
        let mut sched = AsyncScheduler::new(nodes, 888 + seed);
        assert!(
            sched.run_until_pred(30_000_000, |ns| ns.iter().all(SkeapNode::all_complete)),
            "seed {seed} stalled"
        );
        assert_lifo_consistent(&history(sched.nodes()));
    }
}

#[test]
fn priorities_still_dominate_the_discipline() {
    // LIFO only breaks ties *within* a priority: a low-priority element
    // always leaves before any high-priority one.
    let mut nodes = build_lifo(4, 3, 9);
    nodes[0].issue_insert(2, 100); // high priority value
    nodes[1].issue_insert(0, 200); // low → must come out first
    nodes[2].issue_insert(0, 201); // low, newer → before the older low
    let mut sched = SyncScheduler::new(nodes);
    assert!(sched
        .run_until_pred(100_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    for _ in 0..3 {
        sched.nodes_mut()[3].issue_delete();
    }
    assert!(sched
        .run_until_pred(100_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    let h = history(sched.nodes());
    let mut drained: Vec<(u64, u64)> = h
        .records()
        .filter_map(|r| match (r.ret, r.witness) {
            (Some(dpq_core::OpReturn::Removed(e)), Some(w)) => Some((w, e.payload)),
            _ => None,
        })
        .collect();
    drained.sort();
    let payloads: Vec<u64> = drained.into_iter().map(|(_, p)| p).collect();
    assert_eq!(payloads, vec![201, 200, 100]);
    assert_lifo_consistent(&h);
}

#[test]
fn fragmentation_of_the_live_set_is_handled() {
    // Alternate pushes and partial pops so the anchor's live set fragments
    // into multiple intervals, then drain completely.
    let n = 5;
    let mut sched = SyncScheduler::new(build_lifo(n, 1, 10));
    let mut pushed = 0u64;
    let mut popped = 0u64;
    for wave in 0..6u64 {
        for v in 0..n {
            sched.nodes_mut()[v].issue_insert(0, wave * 10 + v as u64);
            pushed += 1;
        }
        // Pop fewer than were pushed, from one node, to leave fragments.
        sched.nodes_mut()[0].issue_delete();
        sched.nodes_mut()[0].issue_delete();
        popped += 2;
        assert!(sched
            .run_until_pred(200_000, |ns| ns.iter().all(SkeapNode::all_complete))
            .is_quiescent());
    }
    // Drain the rest (plus two ⊥).
    for _ in 0..(pushed - popped + 2) {
        sched.nodes_mut()[1].issue_delete();
    }
    assert!(sched
        .run_until_pred(200_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    let h = history(sched.nodes());
    assert_lifo_consistent(&h);
    let bottoms = h
        .records()
        .filter(|r| r.ret == Some(dpq_core::OpReturn::Bottom))
        .count();
    assert_eq!(bottoms, 2);
}
