//! End-to-end Skeap validation: Theorem 3.2's semantic claims checked on
//! whole-cluster executions under both execution models.

use dpq_core::workload::{generate, WorkloadSpec};
use dpq_core::OpKind;
use dpq_semantics::{check_heap_properties, check_local_consistency, replay, ReplayMode};
use dpq_sim::{AsyncConfig, AsyncScheduler, SyncScheduler};
use skeap::cluster;
use skeap::SkeapNode;

fn assert_consistent(history: &dpq_core::History) {
    replay(history, ReplayMode::Fifo).unwrap_or_else(|e| panic!("replay failed: {e}"));
    check_local_consistency(history).unwrap_or_else(|e| panic!("local order: {e}"));
    check_heap_properties(history).unwrap_or_else(|e| panic!("heap property: {e}"));
}

#[test]
fn sync_runs_are_sequentially_consistent() {
    for (n, ops, prios, seed) in [
        (1usize, 40usize, 2u64, 1u64),
        (2, 30, 1, 2),
        (5, 25, 3, 3),
        (16, 20, 4, 4),
        (33, 12, 2, 5),
    ] {
        let spec = WorkloadSpec::balanced(n, ops, prios, seed);
        let run = cluster::run_sync(&spec, prios as usize, 200_000);
        assert!(run.completed, "n={n} seed={seed} did not complete");
        assert_eq!(run.history.completed(), n * ops);
        assert_consistent(&run.history);
    }
}

#[test]
fn async_runs_are_sequentially_consistent() {
    for seed in 0..8u64 {
        let spec = WorkloadSpec::balanced(9, 15, 3, 100 + seed);
        let history = cluster::run_async(&spec, 3, 999 - seed, 30_000_000)
            .unwrap_or_else(|| panic!("seed {seed} stalled"));
        assert_eq!(history.completed(), 9 * 15);
        assert_consistent(&history);
    }
}

#[test]
fn async_starving_adversary_preserves_semantics() {
    let spec = WorkloadSpec::balanced(6, 12, 2, 77);
    let mut nodes = cluster::build(spec.n, 2, spec.seed);
    cluster::inject_all(&mut nodes, &generate(&spec));
    let mut sched = AsyncScheduler::with_config(
        nodes,
        1234,
        AsyncConfig {
            deliver_bias: 0.15,
            sweep_every: 32,
            max_delay: None,
        },
    );
    assert!(sched.run_until_pred(60_000_000, |ns| ns.iter().all(SkeapNode::all_complete)));
    assert_consistent(&cluster::history(sched.nodes()));
}

#[test]
fn bounded_delay_adversary_preserves_semantics() {
    // The third execution regime: asynchronous but with every message
    // delivered within a fixed step bound.
    let spec = WorkloadSpec::balanced(8, 12, 3, 31);
    let mut nodes = cluster::build(spec.n, 3, spec.seed);
    cluster::inject_all(&mut nodes, &generate(&spec));
    let mut sched = AsyncScheduler::with_config(
        nodes,
        777,
        AsyncConfig {
            deliver_bias: 0.4,
            sweep_every: 32,
            max_delay: Some(50),
        },
    );
    assert!(sched.run_until_pred(40_000_000, |ns| ns.iter().all(SkeapNode::all_complete)));
    assert_consistent(&cluster::history(sched.nodes()));
}

#[test]
fn delete_heavy_workload_returns_bottoms_consistently() {
    let spec = WorkloadSpec {
        n: 8,
        ops_per_node: 30,
        insert_ratio: 0.2, // far more deletes than inserts → many ⊥
        n_prios: 3,
        seed: 42,
    };
    let run = cluster::run_sync(&spec, 3, 200_000);
    assert!(run.completed);
    let bottoms = run
        .history
        .records()
        .filter(|r| r.ret == Some(dpq_core::OpReturn::Bottom))
        .count();
    assert!(bottoms > 0, "expected some ⊥ answers");
    assert_consistent(&run.history);
}

#[test]
fn insert_only_then_delete_only_drains_in_priority_order() {
    let n = 6;
    let mut nodes = cluster::build(n, 4, 7);
    // Every node inserts 10 elements with priorities 3,2,1,0,3,2,1,0,…
    for node in nodes.iter_mut() {
        for i in 0..10u64 {
            node.issue_insert(3 - (i % 4), i);
        }
    }
    let mut sched = SyncScheduler::new(nodes);
    assert!(sched
        .run_until_pred(50_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    // Now delete everything (plus some extra ⊥s).
    for v in 0..n {
        for _ in 0..12 {
            sched.nodes_mut()[v].issue_delete();
        }
    }
    assert!(sched
        .run_until_pred(50_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    let history = cluster::history(sched.nodes());
    assert_consistent(&history);
    // All 60 elements removed, 12 ⊥.
    let removed = history
        .records()
        .filter(|r| matches!(r.ret, Some(dpq_core::OpReturn::Removed(_))))
        .count();
    let bottoms = history
        .records()
        .filter(|r| r.ret == Some(dpq_core::OpReturn::Bottom))
        .count();
    assert_eq!(removed, 60);
    assert_eq!(bottoms, 12);
}

#[test]
fn multi_cycle_pipelining_stays_consistent() {
    // Inject in several waves with runs in between, so different batches
    // land in different cycles and position pointers wrap through many
    // states.
    let mut nodes = cluster::build(7, 2, 9);
    let mut sched = SyncScheduler::new(std::mem::take(&mut nodes));
    for wave in 0..5u64 {
        let spec = WorkloadSpec::balanced(7, 6, 2, 500 + wave);
        let scripts = generate(&spec);
        for (v, script) in scripts.iter().enumerate() {
            for op in script {
                // Re-issue inserts through issue_insert so element ids stay
                // unique across waves.
                match op {
                    OpKind::Insert(e) => {
                        sched.nodes_mut()[v].issue_insert(e.prio.0, e.payload);
                    }
                    OpKind::DeleteMin => {
                        sched.nodes_mut()[v].issue_delete();
                    }
                }
            }
        }
        // Run a short burst — not necessarily to completion — before the
        // next wave, so cycles overlap with fresh injections.
        for _ in 0..15 {
            sched.step_round();
        }
    }
    assert!(sched
        .run_until_pred(100_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    assert_consistent(&cluster::history(sched.nodes()));
}

#[test]
fn rounds_per_batch_grow_logarithmically() {
    // Corollary 3.6 shape check: rounds to complete one batch of requests
    // stay within c·log₂(n) as n grows by 64×.
    let rounds = |n: usize| {
        let spec = WorkloadSpec::balanced(n, 4, 2, 11);
        let run = cluster::run_sync(&spec, 2, 400_000);
        assert!(run.completed, "n={n}");
        run.rounds as f64
    };
    let r16 = rounds(16);
    let r1024 = rounds(1024);
    assert!(
        r1024 / r16 < (1024f64).log2() / (16f64).log2() * 3.0,
        "rounds grew superlogarithmically: {r16} -> {r1024}"
    );
}

#[test]
fn element_payloads_survive_the_heap() {
    let mut nodes = cluster::build(4, 2, 13);
    nodes[2].issue_insert(1, 0xDEAD);
    nodes[3].issue_delete();
    let mut sched = SyncScheduler::new(nodes);
    assert!(sched
        .run_until_pred(10_000, |ns| ns.iter().all(SkeapNode::all_complete))
        .is_quiescent());
    let history = cluster::history(sched.nodes());
    let removed: Vec<_> = history
        .records()
        .filter_map(|r| match r.ret {
            Some(dpq_core::OpReturn::Removed(e)) => Some(e),
            _ => None,
        })
        .collect();
    assert_eq!(removed.len(), 1);
    assert_eq!(removed[0].payload, 0xDEAD);
}
