//! The rank-error oracle's teeth test: a *strict* sequential heap, run on
//! arbitrary workloads, must score rank-error ≡ 0 — every dequeue returns
//! the exact ideal minimum, so any nonzero rank the oracle ever reports on
//! such an execution would be an oracle bug, not a heap bug. Conversely, a
//! deliberately mis-ordered execution must be flagged; together these pin
//! both directions of the metric.

use dpq_baselines::seq_heap::{FifoHeap, KeyHeap, ReferenceHeap};
use dpq_core::{ElemId, Element, History, NodeId, OpKind, OpReturn, Priority};
use dpq_semantics::{rank_error, RankOrder};
use proptest::prelude::*;

/// Run ops through a strict reference heap, recording a history whose
/// witness order is the execution order.
fn execute_strict(heap: &mut dyn ReferenceHeap, ops: &[OpKind]) -> History {
    let mut h = History::new(1);
    let v = NodeId(0);
    for (i, &kind) in ops.iter().enumerate() {
        let id = h.node(v).issue(v, kind);
        let ret = match kind {
            OpKind::Insert(e) => {
                heap.insert(e);
                OpReturn::Inserted
            }
            OpKind::DeleteMin => match heap.delete_min() {
                Some(e) => OpReturn::Removed(e),
                None => OpReturn::Bottom,
            },
        };
        h.node(v).complete(id, ret);
        h.node(v).witness(id, i as u64 + 1);
    }
    h
}

fn arb_ops() -> impl Strategy<Value = Vec<OpKind>> {
    proptest::collection::vec(
        prop_oneof![
            // (seq, prio) pairs; seq made unique below.
            (0u64..8).prop_map(|p| (true, p)),
            Just((false, 0u64)),
        ],
        0..60,
    )
    .prop_map(|raw| {
        let mut seq = 0u64;
        raw.into_iter()
            .map(|(is_insert, p)| {
                if is_insert {
                    let e = Element::new(ElemId::compose(NodeId(0), seq), Priority(p), seq);
                    seq += 1;
                    OpKind::Insert(e)
                } else {
                    OpKind::DeleteMin
                }
            })
            .collect()
    })
}

proptest! {
    /// FIFO-strict executions score zero under the FIFO ideal order.
    #[test]
    fn fifo_heap_has_zero_rank_error(ops in arb_ops()) {
        let mut heap = FifoHeap::new();
        let h = execute_strict(&mut heap, &ops);
        let s = rank_error(&h, RankOrder::Fifo).expect("well-formed history");
        prop_assert!(s.is_strict(), "strict FIFO execution scored {s:?}");
        prop_assert_eq!(s.max, 0);
        prop_assert_eq!(s.spurious_empty, 0);
    }

    /// Key-order-strict executions score zero under the key ideal order.
    #[test]
    fn key_heap_has_zero_rank_error(ops in arb_ops()) {
        let mut heap = KeyHeap::new();
        let h = execute_strict(&mut heap, &ops);
        let s = rank_error(&h, RankOrder::KeyOrder).expect("well-formed history");
        prop_assert!(s.is_strict(), "strict key-order execution scored {s:?}");
        prop_assert_eq!(s.max, 0);
    }

    /// The other direction: defer every dequeue to the end and serve them
    /// worst-first; with ≥ 2 live elements at some dequeue, rank error must
    /// be nonzero — the oracle cannot be fooled into calling disorder
    /// strict.
    #[test]
    fn reversed_service_is_flagged(n in 2u64..30) {
        let mut h = History::new(1);
        let v = NodeId(0);
        let es: Vec<Element> = (0..n)
            .map(|i| Element::new(ElemId::compose(v, i), Priority(i), 0))
            .collect();
        let mut w = 1u64;
        for &e in &es {
            let id = h.node(v).issue(v, OpKind::Insert(e));
            h.node(v).complete(id, OpReturn::Inserted);
            h.node(v).witness(id, w);
            w += 1;
        }
        for &e in es.iter().rev() {
            let id = h.node(v).issue(v, OpKind::DeleteMin);
            h.node(v).complete(id, OpReturn::Removed(e));
            h.node(v).witness(id, w);
            w += 1;
        }
        let s = rank_error(&h, RankOrder::KeyOrder).expect("well-formed");
        prop_assert_eq!(s.max, n - 1);
        prop_assert!(!s.is_strict());
    }
}
