//! Constructive serialization checking by replay.

use dpq_baselines::seq_heap::{FifoHeap, KeyHeap, LifoHeap, ReferenceHeap};
use dpq_core::{History, OpId, OpKind, OpRecord, OpReturn};
use std::collections::HashSet;

/// Which sequential tie-break rule the protocol promises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Skeap: within a priority, elements leave in insertion (≺) order.
    Fifo,
    /// Skeap in stack discipline ([FSS18b]-style): within a priority,
    /// elements leave in *reverse* insertion order.
    Lifo,
    /// Seap/KSelect: elements leave in composite-key order.
    KeyOrder,
}

/// A detected semantics violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An operation completed without a witness value.
    MissingWitness(OpId),
    /// Two operations share a witness value.
    DuplicateWitness(u64),
    /// A node's witnesses are not increasing in issue order — local
    /// consistency (Definition 1.1) broken.
    LocalOrder {
        /// The earlier-issued request.
        node: OpId,
        /// The later-issued request with the smaller witness.
        next: OpId,
    },
    /// Replay disagreed with the recorded return at this operation.
    ReplayMismatch {
        /// The disagreeing operation.
        op: OpId,
        /// What the sequential heap produced.
        expected: String,
        /// What the protocol recorded.
        recorded: String,
    },
    /// The matching itself is structurally broken (double removes etc.).
    BadMatching(String),
    /// An operation never completed although the run was declared finished.
    Incomplete(OpId),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingWitness(id) => write!(f, "{id} completed without witness"),
            Violation::DuplicateWitness(w) => write!(f, "witness {w} assigned twice"),
            Violation::LocalOrder { node, next } => {
                write!(f, "local order violated between {node} and {next}")
            }
            Violation::ReplayMismatch {
                op,
                expected,
                recorded,
            } => write!(
                f,
                "{op}: replay produced {expected}, protocol recorded {recorded}"
            ),
            Violation::BadMatching(e) => write!(f, "invalid matching: {e}"),
            Violation::Incomplete(id) => write!(f, "{id} never completed"),
        }
    }
}

fn completed_ops(history: &History) -> Result<Vec<OpRecord>, Violation> {
    let mut ops = Vec::with_capacity(history.len());
    for r in history.records() {
        if r.ret.is_none() {
            return Err(Violation::Incomplete(r.id));
        }
        if r.witness.is_none() {
            return Err(Violation::MissingWitness(r.id));
        }
        ops.push(*r);
    }
    Ok(ops)
}

/// Check witness sanity: every completed op has one, and they are unique.
pub fn check_witnesses(history: &History) -> Result<(), Violation> {
    let ops = completed_ops(history)?;
    let mut seen = HashSet::with_capacity(ops.len());
    for r in &ops {
        let w = r.witness.expect("checked above");
        if !seen.insert(w) {
            return Err(Violation::DuplicateWitness(w));
        }
    }
    Ok(())
}

/// Check local consistency (Definition 1.1): per node, witnesses increase
/// in issue order.
pub fn check_local_consistency(history: &History) -> Result<(), Violation> {
    for node in &history.nodes {
        for pair in node.ops.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (Some(wa), Some(wb)) = (a.witness, b.witness) else {
                return Err(Violation::MissingWitness(a.id));
            };
            if wa >= wb {
                return Err(Violation::LocalOrder {
                    node: a.id,
                    next: b.id,
                });
            }
        }
    }
    Ok(())
}

/// Replay the witness order ≺ on a sequential reference heap and demand the
/// protocol's recorded returns match exactly. Success *constructs* the
/// serial execution of Definition 1.1, proving serializability (and, with
/// [`check_local_consistency`], sequential consistency), and implies the
/// heap-consistency properties of Definition 1.2 for this history.
pub fn replay(history: &History, mode: ReplayMode) -> Result<(), Violation> {
    check_witnesses(history)?;
    history
        .matching()
        .map_err(|e| Violation::BadMatching(e.to_string()))?;
    let mut ops = completed_ops(history)?;
    ops.sort_by_key(|r| r.witness.expect("checked"));

    let mut fifo = FifoHeap::new();
    let mut lifo = LifoHeap::new();
    let mut key = KeyHeap::new();
    let heap: &mut dyn ReferenceHeap = match mode {
        ReplayMode::Fifo => &mut fifo,
        ReplayMode::Lifo => &mut lifo,
        ReplayMode::KeyOrder => &mut key,
    };

    for r in &ops {
        match (r.kind, r.ret.expect("checked")) {
            (OpKind::Insert(e), OpReturn::Inserted) => heap.insert(e),
            (OpKind::Insert(_), other) => {
                return Err(Violation::ReplayMismatch {
                    op: r.id,
                    expected: "Inserted".into(),
                    recorded: format!("{other:?}"),
                })
            }
            (OpKind::DeleteMin, recorded) => {
                let expected = match heap.delete_min() {
                    Some(e) => OpReturn::Removed(e),
                    None => OpReturn::Bottom,
                };
                if expected != recorded {
                    return Err(Violation::ReplayMismatch {
                        op: r.id,
                        expected: format!("{expected:?}"),
                        recorded: format!("{recorded:?}"),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Element, NodeId, Priority};

    fn elem(seq: u64, prio: u64) -> Element {
        Element::new(ElemId::compose(NodeId(0), seq), Priority(prio), 0)
    }

    /// Hand-build a history: (node, kind, return, witness).
    fn hist(n: usize, entries: &[(u64, OpKind, OpReturn, u64)]) -> History {
        let mut h = History::new(n);
        for (node, kind, ret, w) in entries {
            let v = NodeId(*node);
            let id = h.node(v).issue(v, *kind);
            h.node(v).complete(id, *ret);
            h.node(v).witness(id, *w);
        }
        h
    }

    #[test]
    fn correct_fifo_history_passes() {
        let e1 = elem(0, 2);
        let e2 = elem(1, 2);
        let h = hist(
            2,
            &[
                (0, OpKind::Insert(e1), OpReturn::Inserted, 1),
                (0, OpKind::Insert(e2), OpReturn::Inserted, 2),
                (1, OpKind::DeleteMin, OpReturn::Removed(e1), 3),
                (1, OpKind::DeleteMin, OpReturn::Removed(e2), 4),
                (1, OpKind::DeleteMin, OpReturn::Bottom, 5),
            ],
        );
        replay(&h, ReplayMode::Fifo).unwrap();
        check_local_consistency(&h).unwrap();
    }

    #[test]
    fn fifo_violation_is_caught() {
        let e1 = elem(0, 2);
        let e2 = elem(1, 2);
        // Removes the *newer* element first — legal under key order (e1.id <
        // e2.id so actually illegal there too), but a FIFO violation.
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(e1), OpReturn::Inserted, 1),
                (0, OpKind::Insert(e2), OpReturn::Inserted, 2),
                (0, OpKind::DeleteMin, OpReturn::Removed(e2), 3),
            ],
        );
        assert!(matches!(
            replay(&h, ReplayMode::Fifo),
            Err(Violation::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn priority_violation_is_caught() {
        let lo = elem(0, 1);
        let hi = elem(1, 9);
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(lo), OpReturn::Inserted, 1),
                (0, OpKind::Insert(hi), OpReturn::Inserted, 2),
                (0, OpKind::DeleteMin, OpReturn::Removed(hi), 3),
            ],
        );
        assert!(replay(&h, ReplayMode::Fifo).is_err());
        assert!(replay(&h, ReplayMode::KeyOrder).is_err());
    }

    #[test]
    fn bottom_with_nonempty_heap_is_caught() {
        let e = elem(0, 1);
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(e), OpReturn::Inserted, 1),
                (0, OpKind::DeleteMin, OpReturn::Bottom, 2),
            ],
        );
        assert!(matches!(
            replay(&h, ReplayMode::Fifo),
            Err(Violation::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn local_order_violation_is_caught() {
        let e = elem(0, 1);
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(e), OpReturn::Inserted, 5),
                (0, OpKind::DeleteMin, OpReturn::Removed(e), 3),
            ],
        );
        assert!(matches!(
            check_local_consistency(&h),
            Err(Violation::LocalOrder { .. })
        ));
        // In witness order the delete precedes its insert, so the replay
        // fails too — but with a *different* violation, showing the checks
        // look at independent facets.
        assert!(matches!(
            replay(&h, ReplayMode::Fifo),
            Err(Violation::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_witness_is_caught() {
        let e = elem(0, 1);
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(e), OpReturn::Inserted, 1),
                (0, OpKind::DeleteMin, OpReturn::Removed(e), 1),
            ],
        );
        assert!(matches!(
            check_witnesses(&h),
            Err(Violation::DuplicateWitness(1))
        ));
    }

    #[test]
    fn key_order_mode_demands_id_tiebreak() {
        let a = elem(0, 5); // smaller id
        let b = elem(1, 5);
        let h = hist(
            1,
            &[
                (0, OpKind::Insert(b), OpReturn::Inserted, 1),
                (0, OpKind::Insert(a), OpReturn::Inserted, 2),
                (0, OpKind::DeleteMin, OpReturn::Removed(a), 3),
                (0, OpKind::DeleteMin, OpReturn::Removed(b), 4),
            ],
        );
        replay(&h, ReplayMode::KeyOrder).unwrap();
        // FIFO would have expected b first.
        assert!(replay(&h, ReplayMode::Fifo).is_err());
    }
}
