//! # dpq-semantics
//!
//! Checkers for the paper's semantic guarantees over recorded execution
//! histories:
//!
//! * **Serializability / sequential consistency** (Definition 1.1) via
//!   [`replay()`](replay::replay): the protocol hands every operation a *witness* — its
//!   position in the claimed total order ≺ — and the checker replays ≺ on a
//!   sequential reference heap, demanding identical returns. A successful
//!   replay *constructs* the equivalent serial execution; adding the
//!   per-node witness-monotonicity check upgrades the verdict to sequential
//!   consistency.
//! * **Heap consistency** (Definition 1.2) via [`heap_props`]: the three
//!   properties checked literally against ≺ and the matching M.
//! * **Rank error** via [`rank_error`]: not a pass/fail check but a
//!   *measurement* — per-dequeue distance from the ideal strict heap, the
//!   quality metric relaxed priority queues are graded on (PAPERS.md:
//!   k-LSM benchmark, MultiQueue).

#![warn(missing_docs)]

pub mod heap_props;
pub mod rank_error;
pub mod replay;

pub use heap_props::check_heap_properties;
pub use rank_error::{rank_error, RankErrorSummary, RankOrder};
pub use replay::{check_local_consistency, check_witnesses, replay, ReplayMode, Violation};
