//! Literal checks of the heap-consistency properties (Definition 1.2).
//!
//! Given the witness order ≺ and the matching M, verify:
//!
//! 1. every matched pair satisfies `Ins ≺ Del`;
//! 2. no matched pair `(Ins, Del)` brackets an *unmatched* DeleteMin
//!    (a ⊥ answer while a later-removed element was already in the heap);
//! 3. no matched pair `(Ins_v, Del_w)` coexists with an unmatched Insert of
//!    strictly smaller priority preceding `Del_w` (a DeleteMin must prefer
//!    the smallest priority present).
//!
//! [`crate::replay::replay`] already implies all three; this module exists so the
//! test suite also exercises the paper's definitions *as stated*, and so a
//! hypothetical protocol bug would be reported in the paper's vocabulary.

use dpq_core::{History, MatchSet, OpKind, OpRecord, OpReturn};

/// Which property failed, with the witnesses involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapViolation {
    /// Property (1): a delete preceded its matched insert.
    DeleteBeforeInsert {
        /// Witness of the insert.
        ins_w: u64,
        /// Witness of the delete.
        del_w: u64,
    },
    /// Property (2): an unmatched delete strictly between a matched pair.
    BottomWhileOccupied {
        /// Witness of the bracketing insert (0 when not pinpointed).
        ins_w: u64,
        /// Witness of the ⊥ delete.
        bottom_w: u64,
        /// Witness of the bracketing delete (0 when not pinpointed).
        del_w: u64,
    },
    /// Property (3): a smaller-priority unmatched insert preceded a matched
    /// delete.
    WrongPriorityServed {
        /// Witness of the skipped smaller-priority insert.
        unmatched_ins_w: u64,
        /// Witness of the insert actually served.
        matched_ins_w: u64,
        /// Witness of the delete.
        del_w: u64,
    },
    /// Precondition failures (missing witnesses / broken matching).
    Malformed(
        /// Description of the malformation.
        String,
    ),
}

impl std::fmt::Display for HeapViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Check all three properties of Definition 1.2. O(S log S).
pub fn check_heap_properties(history: &History) -> Result<(), HeapViolation> {
    let matching: MatchSet = history
        .matching()
        .map_err(|e| HeapViolation::Malformed(e.to_string()))?;
    let mut ops: Vec<OpRecord> = Vec::with_capacity(history.len());
    for r in history.records() {
        if r.ret.is_none() {
            continue; // incomplete ops are not in S yet
        }
        if r.witness.is_none() {
            return Err(HeapViolation::Malformed(format!("{} has no witness", r.id)));
        }
        ops.push(*r);
    }
    ops.sort_by_key(|r| r.witness.expect("filtered"));

    let witness_of = |id| -> u64 {
        ops.iter()
            .find(|r| r.id == id)
            .and_then(|r| r.witness)
            .expect("matched ops are recorded")
    };

    // Property (1).
    for (del, ins) in &matching.by_delete {
        let (wi, wd) = (witness_of(*ins), witness_of(*del));
        if wi >= wd {
            return Err(HeapViolation::DeleteBeforeInsert {
                ins_w: wi,
                del_w: wd,
            });
        }
    }

    // Sweep in ≺ order for properties (2) and (3).
    // (2): at an unmatched delete, no matched pair may be "open" (insert
    // seen, delete not yet seen).
    // (3): at a matched delete, the smallest priority among unmatched
    // inserts seen so far must not undercut the matched insert's priority.
    let mut open_pairs: u64 = 0;
    let mut min_unmatched_ins: Option<(u64, u64)> = None; // (prio, witness)
    let mut ins_prio_of_del = std::collections::HashMap::new();
    for (del, ins) in &matching.by_delete {
        let prio = ops
            .iter()
            .find(|r| r.id == *ins)
            .map(|r| match r.kind {
                OpKind::Insert(e) => e.prio.0,
                OpKind::DeleteMin => unreachable!("matching maps deletes to inserts"),
            })
            .expect("matched insert recorded");
        ins_prio_of_del.insert(*del, (prio, witness_of(*ins)));
    }

    for r in &ops {
        let w = r.witness.expect("filtered");
        match r.kind {
            OpKind::Insert(e) => {
                if matching.by_insert.contains_key(&r.id) {
                    open_pairs += 1;
                } else if min_unmatched_ins.is_none_or(|(p, _)| e.prio.0 < p) {
                    min_unmatched_ins = Some((e.prio.0, w));
                }
            }
            OpKind::DeleteMin => match r.ret {
                Some(OpReturn::Removed(_)) => {
                    open_pairs -= 1;
                    let (matched_prio, matched_ins_w) = ins_prio_of_del[&r.id];
                    if let Some((p, uw)) = min_unmatched_ins {
                        if p < matched_prio {
                            return Err(HeapViolation::WrongPriorityServed {
                                unmatched_ins_w: uw,
                                matched_ins_w,
                                del_w: w,
                            });
                        }
                    }
                }
                Some(OpReturn::Bottom) => {
                    if open_pairs > 0 {
                        // Some matched pair (ins ≺ here ≺ del) is open.
                        return Err(HeapViolation::BottomWhileOccupied {
                            ins_w: 0,
                            bottom_w: w,
                            del_w: 0,
                        });
                    }
                }
                _ => {
                    return Err(HeapViolation::Malformed(format!(
                        "delete {} recorded an insert return",
                        r.id
                    )))
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{ElemId, Element, NodeId, Priority};

    fn elem(seq: u64, prio: u64) -> Element {
        Element::new(ElemId::compose(NodeId(0), seq), Priority(prio), 0)
    }

    fn hist(entries: &[(OpKind, OpReturn, u64)]) -> History {
        let mut h = History::new(1);
        for (kind, ret, w) in entries {
            let v = NodeId(0);
            let id = h.node(v).issue(v, *kind);
            h.node(v).complete(id, *ret);
            h.node(v).witness(id, *w);
        }
        h
    }

    #[test]
    fn clean_history_passes() {
        let e1 = elem(0, 1);
        let e2 = elem(1, 2);
        let h = hist(&[
            (OpKind::Insert(e1), OpReturn::Inserted, 1),
            (OpKind::Insert(e2), OpReturn::Inserted, 2),
            (OpKind::DeleteMin, OpReturn::Removed(e1), 3),
            (OpKind::DeleteMin, OpReturn::Removed(e2), 4),
            (OpKind::DeleteMin, OpReturn::Bottom, 5),
        ]);
        check_heap_properties(&h).unwrap();
    }

    #[test]
    fn property1_violation() {
        let e = elem(0, 1);
        let h = hist(&[
            (OpKind::DeleteMin, OpReturn::Removed(e), 1),
            (OpKind::Insert(e), OpReturn::Inserted, 2),
        ]);
        assert!(matches!(
            check_heap_properties(&h),
            Err(HeapViolation::DeleteBeforeInsert { .. })
        ));
    }

    #[test]
    fn property2_violation() {
        let e = elem(0, 1);
        // Insert ≺ bottom-Delete ≺ matched Delete.
        let h = hist(&[
            (OpKind::Insert(e), OpReturn::Inserted, 1),
            (OpKind::DeleteMin, OpReturn::Bottom, 2),
            (OpKind::DeleteMin, OpReturn::Removed(e), 3),
        ]);
        assert!(matches!(
            check_heap_properties(&h),
            Err(HeapViolation::BottomWhileOccupied { .. })
        ));
    }

    #[test]
    fn property3_violation() {
        let urgent = elem(0, 0); // never removed
        let lazy = elem(1, 9);
        let h = hist(&[
            (OpKind::Insert(urgent), OpReturn::Inserted, 1),
            (OpKind::Insert(lazy), OpReturn::Inserted, 2),
            (OpKind::DeleteMin, OpReturn::Removed(lazy), 3),
        ]);
        assert!(matches!(
            check_heap_properties(&h),
            Err(HeapViolation::WrongPriorityServed { .. })
        ));
    }

    #[test]
    fn unremoved_elements_are_fine() {
        let e = elem(0, 3);
        let h = hist(&[(OpKind::Insert(e), OpReturn::Inserted, 1)]);
        check_heap_properties(&h).unwrap();
    }

    #[test]
    fn incomplete_ops_are_ignored() {
        let mut h = History::new(1);
        let v = NodeId(0);
        h.node(v).issue(v, OpKind::DeleteMin); // never completes
        check_heap_properties(&h).unwrap();
    }
}
