//! Rank-error oracle: how far each dequeue strays from the ideal heap.
//!
//! Strict priority queues (Skeap, Seap) always return the global minimum;
//! relaxed designs (k-LSM, MultiQueue) trade that guarantee for throughput
//! and return *some small* element. The standard quality metric — from the
//! k-LSM benchmark study (Gruber/Träff/Wimmer) and the MultiQueue analysis
//! (Alistarh et al.), see PAPERS.md — is the **rank error**: at the moment
//! a dequeue takes element `e`, the number of live elements strictly
//! smaller than `e` in the ideal strict heap. A strict queue scores 0 on
//! every dequeue; a relaxed queue's rank-error distribution *is* its
//! disorder.
//!
//! The oracle replays a recorded [`History`] in witness order (for relaxed
//! executions the witness is simply the global execution order the trace
//! executor assigns), maintains the ideal heap as a Fenwick tree over
//! rank-compressed element keys, and answers each dequeue's rank query in
//! O(log n). Distributions go into the workspace's [`LogHistogram`], which
//! is exact below 256 — and rank errors of interest live well below that.

use crate::replay::Violation;
use dpq_core::{ElemId, History, OpKind, OpRecord, OpReturn};
use dpq_telemetry::LogHistogram;
use std::collections::HashMap;

/// Which ideal order the oracle ranks against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankOrder {
    /// Skeap's discipline: priority, then insertion (witness) order.
    Fifo,
    /// Seap's discipline: the composite key (priority, ElemId).
    KeyOrder,
}

/// Rank-error distribution of one history.
#[derive(Debug, Clone)]
pub struct RankErrorSummary {
    /// Dequeues that returned an element.
    pub deletes: u64,
    /// Dequeues that returned ⊥ while live elements existed — an extreme
    /// disorder event (every live element was overtaken); each contributes
    /// its live count to the distribution.
    pub spurious_empty: u64,
    /// Largest rank error observed.
    pub max: u64,
    /// Mean rank error.
    pub mean: f64,
    /// 99th-percentile rank error.
    pub p99: u64,
    /// The full distribution.
    pub hist: LogHistogram,
}

impl RankErrorSummary {
    /// Did every dequeue return the exact minimum?
    pub fn is_strict(&self) -> bool {
        self.max == 0 && self.spurious_empty == 0
    }
}

/// Fenwick (binary indexed) tree over element counts, 1-indexed.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Compute the rank-error distribution of a history.
///
/// Requirements mirror [`crate::replay::replay`]: every op completed and
/// witnessed (strict protocols emit real witnesses; relaxed trace executors
/// assign execution order), and the matching must be structurally sound.
/// Unlike `replay` this never fails on *reordering* — disorder is the
/// measurement, not a violation.
pub fn rank_error(history: &History, order: RankOrder) -> Result<RankErrorSummary, Violation> {
    history
        .matching()
        .map_err(|e| Violation::BadMatching(e.to_string()))?;
    let mut ops: Vec<OpRecord> = Vec::with_capacity(history.len());
    for r in history.records() {
        if r.ret.is_none() {
            return Err(Violation::Incomplete(r.id));
        }
        if r.witness.is_none() {
            return Err(Violation::MissingWitness(r.id));
        }
        ops.push(*r);
    }
    ops.sort_by_key(|r| r.witness.expect("checked"));

    // Rank-compress the ideal-order keys of every inserted element. Both
    // orders are total: FIFO keys (prio, witness) are unique because
    // witnesses are, KeyOrder keys (prio, id) because ElemIds are.
    let mut keys: Vec<(u64, u64, ElemId)> = ops
        .iter()
        .filter_map(|r| match r.kind {
            OpKind::Insert(e) => Some(match order {
                RankOrder::Fifo => (e.prio.0, r.witness.expect("checked"), e.id),
                RankOrder::KeyOrder => (e.prio.0, e.id.0, e.id),
            }),
            OpKind::DeleteMin => None,
        })
        .collect();
    keys.sort_unstable();
    let idx: HashMap<ElemId, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, &(_, _, id))| (id, i))
        .collect();

    let mut fen = Fenwick::new(keys.len());
    let mut live: i64 = 0;
    let mut hist = LogHistogram::new();
    let mut deletes = 0u64;
    let mut spurious_empty = 0u64;
    for r in &ops {
        match (r.kind, r.ret.expect("checked")) {
            (OpKind::Insert(e), _) => {
                fen.add(idx[&e.id], 1);
                live += 1;
            }
            (OpKind::DeleteMin, OpReturn::Removed(e)) => {
                let i = idx[&e.id];
                // Live elements strictly smaller than e in the ideal order.
                let below = if i == 0 { 0 } else { fen.prefix(i - 1) };
                hist.record(below as u64);
                deletes += 1;
                fen.add(i, -1);
                live -= 1;
            }
            (OpKind::DeleteMin, OpReturn::Bottom) => {
                if live > 0 {
                    spurious_empty += 1;
                    hist.record(live as u64);
                }
            }
            (OpKind::DeleteMin, OpReturn::Inserted) => {
                return Err(Violation::BadMatching(format!(
                    "{}: DeleteMin returned Inserted",
                    r.id
                )))
            }
        }
    }
    Ok(RankErrorSummary {
        deletes,
        spurious_empty,
        max: hist.max(),
        mean: hist.mean(),
        p99: hist.quantile(0.99),
        hist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpq_core::{Element, NodeId, Priority};

    fn elem(seq: u64, prio: u64) -> Element {
        Element::new(ElemId::compose(NodeId(0), seq), Priority(prio), 0)
    }

    /// Hand-build a single-node history: (kind, return) in witness order.
    fn hist(entries: &[(OpKind, OpReturn)]) -> History {
        let mut h = History::new(1);
        let v = NodeId(0);
        for (i, (kind, ret)) in entries.iter().enumerate() {
            let id = h.node(v).issue(v, *kind);
            h.node(v).complete(id, *ret);
            h.node(v).witness(id, i as u64 + 1);
        }
        h
    }

    #[test]
    fn strict_in_order_execution_scores_zero() {
        let a = elem(0, 1);
        let b = elem(1, 2);
        let h = hist(&[
            (OpKind::Insert(b), OpReturn::Inserted),
            (OpKind::Insert(a), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Removed(a)),
            (OpKind::DeleteMin, OpReturn::Removed(b)),
            (OpKind::DeleteMin, OpReturn::Bottom),
        ]);
        for order in [RankOrder::Fifo, RankOrder::KeyOrder] {
            let s = rank_error(&h, order).unwrap();
            assert!(s.is_strict(), "{order:?}: {s:?}");
            assert_eq!(s.deletes, 2);
            assert_eq!(s.spurious_empty, 0);
        }
    }

    #[test]
    fn hand_computed_rank_distances() {
        // Live = {p1, p3, p5, p7}; dequeue p5 with {p1, p3} below → rank 2,
        // then p1 → rank 0, then p7 with {p3} live below → rank 1.
        let e1 = elem(0, 1);
        let e3 = elem(1, 3);
        let e5 = elem(2, 5);
        let e7 = elem(3, 7);
        let h = hist(&[
            (OpKind::Insert(e1), OpReturn::Inserted),
            (OpKind::Insert(e3), OpReturn::Inserted),
            (OpKind::Insert(e5), OpReturn::Inserted),
            (OpKind::Insert(e7), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Removed(e5)),
            (OpKind::DeleteMin, OpReturn::Removed(e1)),
            (OpKind::DeleteMin, OpReturn::Removed(e7)),
        ]);
        let s = rank_error(&h, RankOrder::KeyOrder).unwrap();
        assert_eq!(s.deletes, 3);
        assert_eq!(s.max, 2);
        assert_eq!(s.hist.quantile(0.0), 0);
        assert!((s.mean - 1.0).abs() < 1e-9, "mean {}", s.mean);
        assert!(!s.is_strict());
    }

    #[test]
    fn fifo_order_ranks_by_insertion_within_priority() {
        // Same priority throughout: under FIFO the ideal order is insertion
        // order, so taking the *second*-inserted first is rank 1 — while
        // KeyOrder agrees here only because ids grow with insertion.
        let a = elem(0, 4);
        let b = elem(1, 4);
        let h = hist(&[
            (OpKind::Insert(a), OpReturn::Inserted),
            (OpKind::Insert(b), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Removed(b)),
            (OpKind::DeleteMin, OpReturn::Removed(a)),
        ]);
        let s = rank_error(&h, RankOrder::Fifo).unwrap();
        assert_eq!(s.max, 1);
        assert_eq!(s.deletes, 2);
        // The second dequeue takes the true minimum: rank 0.
        assert_eq!(s.hist.quantile(0.0), 0);
    }

    #[test]
    fn fifo_and_key_order_disagree_when_ids_invert() {
        // Insert the *larger-id* element first. FIFO ranks it first (it
        // arrived first); KeyOrder ranks the smaller id first. Dequeueing
        // insertion-first is strict under FIFO, rank 1 under KeyOrder.
        let small = elem(0, 4);
        let large = elem(1, 4);
        let h = hist(&[
            (OpKind::Insert(large), OpReturn::Inserted),
            (OpKind::Insert(small), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Removed(large)),
            (OpKind::DeleteMin, OpReturn::Removed(small)),
        ]);
        assert!(rank_error(&h, RankOrder::Fifo).unwrap().is_strict());
        let s = rank_error(&h, RankOrder::KeyOrder).unwrap();
        assert_eq!(s.max, 1);
    }

    #[test]
    fn spurious_bottom_counts_live_elements() {
        let a = elem(0, 1);
        let b = elem(1, 2);
        let h = hist(&[
            (OpKind::Insert(a), OpReturn::Inserted),
            (OpKind::Insert(b), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Bottom),
            (OpKind::DeleteMin, OpReturn::Removed(a)),
        ]);
        let s = rank_error(&h, RankOrder::KeyOrder).unwrap();
        assert_eq!(s.spurious_empty, 1);
        assert_eq!(s.max, 2, "a spurious ⊥ overtakes every live element");
        assert_eq!(s.deletes, 1);
    }

    #[test]
    fn true_bottom_is_free() {
        let h = hist(&[(OpKind::DeleteMin, OpReturn::Bottom)]);
        let s = rank_error(&h, RankOrder::Fifo).unwrap();
        assert!(s.is_strict());
        assert_eq!(s.deletes, 0);
    }

    #[test]
    fn structural_breakage_is_still_an_error() {
        // Same element removed twice: disorder measurement must not paper
        // over a broken matching.
        let a = elem(0, 1);
        let h = hist(&[
            (OpKind::Insert(a), OpReturn::Inserted),
            (OpKind::DeleteMin, OpReturn::Removed(a)),
            (OpKind::DeleteMin, OpReturn::Removed(a)),
        ]);
        assert!(matches!(
            rank_error(&h, RankOrder::Fifo),
            Err(Violation::BadMatching(_))
        ));
    }

    #[test]
    fn worst_case_reversal_has_linear_rank() {
        // Insert 0..10 by priority, dequeue in exactly reverse order: the
        // i-th dequeue (taking the largest live) has rank = live - 1.
        let es: Vec<Element> = (0..10).map(|i| elem(i, i)).collect();
        let mut entries: Vec<(OpKind, OpReturn)> = es
            .iter()
            .map(|&e| (OpKind::Insert(e), OpReturn::Inserted))
            .collect();
        entries.extend(
            es.iter()
                .rev()
                .map(|&e| (OpKind::DeleteMin, OpReturn::Removed(e))),
        );
        let s = rank_error(&hist(&entries), RankOrder::KeyOrder).unwrap();
        assert_eq!(s.max, 9);
        // Mean of 9,8,…,0 = 4.5.
        assert!((s.mean - 4.5).abs() < 1e-9);
    }
}
